"""End-to-end tests for the resident chase daemon (repro.server).

Every test runs the real HTTP stack — an in-process daemon on a
background event loop thread, the :class:`ServerClient` on a persistent
``http.client`` connection — so the wire format, the error mapping and
the session state machine are all exercised exactly as an operator
would hit them.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.concrete import ConcreteInstance
from repro.serialize import (
    concrete_fact_to_json,
    concrete_instance_from_json,
    concrete_instance_to_json,
    setting_to_json,
)
from repro.server import ClientError, ServerClient, ServerThread
from repro.workloads import (
    employment_setting,
    employment_source_concrete,
    exchange_setting_org,
    random_org_history,
)

ORG_SETTING_JSON = setting_to_json(exchange_setting_org())
ORG_FACTS = list(random_org_history(people=8, timeline=16, seed=11).instance)


def org_instance(count: int) -> ConcreteInstance:
    instance = ConcreteInstance()
    for fact in ORG_FACTS[:count]:
        instance.add(fact)
    return instance


def org_source_json(count: int) -> dict:
    return concrete_instance_to_json(org_instance(count))


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    spool = tmp_path_factory.mktemp("spool")
    with ServerThread(snapshot_dir=str(spool)) as thread:
        yield thread


@pytest.fixture
def client(server):
    with ServerClient(port=server.port) as connection:
        yield connection


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class TestLifecycle:
    def test_health(self, client):
        assert client.healthz()["status"] == "ok"

    def test_create_and_info(self, client):
        result = client.create("life", ORG_SETTING_JSON, org_source_json(10))
        assert result["session"]["name"] == "life"
        assert result["session"]["target_facts"] > 0
        info = client.info("life")
        assert info["source_facts"] == 10
        client.evict("life")

    def test_create_twice_conflicts_without_replace(self, client):
        client.create("dup", ORG_SETTING_JSON, org_source_json(5))
        with pytest.raises(ClientError) as err:
            client.create("dup", ORG_SETTING_JSON, org_source_json(5))
        assert err.value.status == 409
        client.create("dup", ORG_SETTING_JSON, org_source_json(6), replace=True)
        assert client.info("dup")["source_facts"] == 6
        client.evict("dup")


class TestChurnByteIdentity:
    """The tentpole guarantee: a session maintained by deltas serves a
    target byte-identical to a from-scratch CLI chase of the cumulative
    source instance."""

    def test_delta_stream_matches_cold_cli_chase(self, client, tmp_path):
        initial = 10
        client.create("churn", ORG_SETTING_JSON, org_source_json(initial))
        count = initial
        for step in range(3):
            batch = [
                concrete_fact_to_json(fact)
                for fact in ORG_FACTS[count : count + 4]
            ]
            result = client.delta("churn", add=batch)
            count += 4
            assert result["source_facts"] == count
            # the diff is relative to the previous target, in the
            # canonical SourceDelta codec (versioned client)
            assert "add" in result["diff"] and "remove" in result["diff"]

        served = client.target("churn")

        mapping = tmp_path / "mapping.json"
        source = tmp_path / "source.json"
        out = tmp_path / "solution.json"
        mapping.write_text(json.dumps(ORG_SETTING_JSON))
        source.write_text(json.dumps(client.source("churn")))
        code = main(
            [
                "chase",
                "--mapping",
                str(mapping),
                "--source",
                str(source),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert canonical(json.loads(out.read_text())) == canonical(served)
        client.evict("churn")

    def test_removals_flow_through(self, client):
        client.create("shrink", ORG_SETTING_JSON, org_source_json(12))
        victim = concrete_fact_to_json(ORG_FACTS[3])
        result = client.delta("shrink", remove=[victim])
        assert result["source_facts"] == 11
        roundtrip = concrete_instance_from_json(client.source("shrink"))
        assert ORG_FACTS[3] not in roundtrip
        client.evict("shrink")

    def test_strict_delta_rejects_drift(self, client):
        client.create("strict", ORG_SETTING_JSON, org_source_json(8))
        present = concrete_fact_to_json(ORG_FACTS[0])
        absent = concrete_fact_to_json(ORG_FACTS[-1])
        with pytest.raises(ClientError) as err:
            client.delta("strict", add=[present])
        assert err.value.status == 400
        with pytest.raises(ClientError) as err:
            client.delta("strict", remove=[absent])
        assert err.value.status == 400
        # the failed delta must not have mutated the session
        assert client.info("strict")["source_facts"] == 8
        client.evict("strict")


class TestQueries:
    def test_query_answers_and_ledger_replay(self, client):
        client.create("q", ORG_SETTING_JSON, org_source_json(14))
        first = client.query("q", "answer(e, m) :- Reports(e, m)")
        assert first["answers"]
        assert first["evaluated"] >= 1
        again = client.query("q", "answer(e, m) :- Reports(e, m)")
        assert again["answers"] == first["answers"]
        assert again["replayed"] >= 1
        assert again["evaluated"] == 0
        client.evict("q")

    def test_union_query(self, client):
        client.create("u", ORG_SETTING_JSON, org_source_json(10))
        result = client.query(
            "u",
            "answer(e) :- Reports(e, m); answer(e) :- Log(e, t, s)",
        )
        assert result["answers"]
        client.evict("u")

    def test_scan_engine_agrees(self, client):
        client.create("eng", ORG_SETTING_JSON, org_source_json(10))
        indexed = client.query("eng", "answer(e, m) :- Reports(e, m)")
        scan = client.query(
            "eng", "answer(e, m) :- Reports(e, m)", engine="scan"
        )
        assert indexed["answers"] == scan["answers"]
        client.evict("eng")


class TestCache:
    def test_identical_create_is_a_cache_hit(self, client):
        source = org_source_json(9)
        first = client.create("cache-a", ORG_SETTING_JSON, source)
        second = client.create("cache-b", ORG_SETTING_JSON, source)
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["digest"] == second["digest"]
        assert canonical(client.target("cache-a")) == canonical(
            client.target("cache-b")
        )
        client.evict("cache-a")
        client.evict("cache-b")

    def test_cached_sessions_do_not_alias(self, client):
        source = org_source_json(7)
        client.create("alias-a", ORG_SETTING_JSON, source)
        client.create("alias-b", ORG_SETTING_JSON, source)
        batch = [concrete_fact_to_json(ORG_FACTS[7])]
        client.delta("alias-a", add=batch)
        # b's session must be untouched by a's delta
        assert client.info("alias-b")["source_facts"] == 7
        assert canonical(client.target("alias-a")) != canonical(
            client.target("alias-b")
        )
        client.evict("alias-a")
        client.evict("alias-b")


class TestSnapshotEvictLoad:
    def test_round_trip_preserves_target_and_ledgers(self, client):
        client.create("snap", ORG_SETTING_JSON, org_source_json(11))
        client.delta("snap", add=[concrete_fact_to_json(ORG_FACTS[11])])
        client.query("snap", "answer(e, m) :- Reports(e, m)")
        before = client.target("snap")

        client.evict("snap", snapshot=True)
        assert "snap" not in [s["name"] for s in client.sessions()]

        client.load("snap")
        assert canonical(client.target("snap")) == canonical(before)
        # the reloaded query ledger still replays
        again = client.query("snap", "answer(e, m) :- Reports(e, m)")
        assert again["replayed"] >= 1
        # and the replay state still drives incremental deltas
        result = client.delta("snap", add=[concrete_fact_to_json(ORG_FACTS[12])])
        assert result["source_facts"] == 13
        client.evict("snap")

    def test_load_unknown_is_404(self, client):
        with pytest.raises(ClientError) as err:
            client.load("never-snapshotted")
        assert err.value.status == 404


class TestErrorMapping:
    """Malformed requests are 4xx, never 5xx."""

    @pytest.mark.parametrize(
        "method,path,payload,expected",
        [
            ("GET", "/nope", None, 404),
            ("PUT", "/sessions", {}, 405),
            ("POST", "/sessions", {}, 400),
            ("POST", "/sessions", {"name": "x y", "setting": {}, "source": {}}, 400),
            ("POST", "/sessions", {"name": "ok", "setting": {"junk": 1}, "source": {}}, 400),
            ("POST", "/sessions/ghost/delta", {"add": []}, 404),
            ("GET", "/sessions/ghost", None, 404),
            ("POST", "/sessions/ghost/query", {"query": "x"}, 404),
            ("DELETE", "/sessions/ghost", None, 404),
        ],
    )
    def test_statuses(self, client, method, path, payload, expected):
        with pytest.raises(ClientError) as err:
            client.request(method, path, payload)
        assert err.value.status == expected

    def test_bad_fact_payload(self, client):
        client.create("facts", ORG_SETTING_JSON, org_source_json(5))
        with pytest.raises(ClientError) as err:
            client.delta("facts", add=[{"bogus": True}])
        assert err.value.status == 400
        assert "add[0]" in str(err.value)
        client.evict("facts")

    def test_bad_query_text(self, client):
        client.create("badq", ORG_SETTING_JSON, org_source_json(5))
        with pytest.raises(ClientError) as err:
            client.query("badq", "this is not a rule")
        assert 400 <= err.value.status < 500
        client.evict("badq")

    def test_invalid_json_body(self, server):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        connection.request(
            "POST",
            "/sessions",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        response.read()
        connection.close()

    def test_failing_chase_is_409(self, client):
        # The medical key EGD fails on conflicting treatments.
        from repro.workloads import medical_conflicting_scenario

        scenario = medical_conflicting_scenario()
        with pytest.raises(ClientError) as err:
            client.create(
                "doomed",
                setting_to_json(scenario.setting),
                concrete_instance_to_json(scenario.source),
            )
        assert err.value.status == 409


class TestAbstract:
    def test_sharded_abstract_chase(self, client):
        client.create("abs", ORG_SETTING_JSON, org_source_json(12))
        result = client.abstract("abs", shards=2)
        assert result["regions"] > 0
        assert result["templates"] > 0
        assert len(result["shards"]) == 2
        client.evict("abs")


class TestConcurrency:
    def test_concurrent_sessions_make_progress(self, server):
        names = [f"conc-{index}" for index in range(4)]
        errors: list[BaseException] = []

        def worker(name: str, offset: int) -> None:
            try:
                with ServerClient(port=server.port) as mine:
                    mine.create(
                        name, ORG_SETTING_JSON, org_source_json(6 + offset)
                    )
                    for step in range(2):
                        fact = concrete_fact_to_json(
                            ORG_FACTS[6 + offset + step]
                        )
                        mine.delta(name, add=[fact])
                    answers = mine.query(
                        name, "answer(e, m) :- Reports(e, m)"
                    )
                    assert "answers" in answers
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(name, index))
            for index, name in enumerate(names)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors

        with ServerClient(port=server.port) as check:
            live = {s["name"] for s in check.sessions()}
            assert set(names) <= live
            for index, name in enumerate(names):
                assert check.info(name)["source_facts"] == 8 + index
                check.evict(name)


class TestEmploymentWorkload:
    """A second mapping through the same daemon (schema independence)."""

    def test_figure9_served(self, client):
        client.create(
            "emp",
            setting_to_json(employment_setting()),
            concrete_instance_to_json(employment_source_concrete()),
        )
        target = client.target("emp")
        assert len(target["facts"]) == 5  # Figure 9
        client.evict("emp")
