"""Integration tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.serialize import concrete_instance_to_json, setting_to_json
from repro.workloads import (
    employment_setting,
    employment_source_concrete,
    medical_conflicting_scenario,
)


@pytest.fixture
def mapping_file(tmp_path):
    path = tmp_path / "mapping.json"
    path.write_text(json.dumps(setting_to_json(employment_setting())))
    return str(path)


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "source.json"
    path.write_text(
        json.dumps(concrete_instance_to_json(employment_source_concrete()))
    )
    return str(path)


class TestChaseCommand:
    def test_writes_solution(self, mapping_file, source_file, tmp_path, capsys):
        out = tmp_path / "solution.json"
        code = main(
            [
                "chase",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["facts"]) == 5  # Figure 9

    def test_pretty_prints_tables(self, mapping_file, source_file, capsys):
        code = main(
            ["chase", "--mapping", mapping_file, "--source", source_file, "--pretty"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Emp+" in output and "[2013, 2014)" in output

    def test_trace_flag(self, mapping_file, source_file, capsys):
        code = main(
            ["chase", "--mapping", mapping_file, "--source", source_file, "--trace"]
        )
        assert code == 0
        assert "chase steps" in capsys.readouterr().err

    def test_failure_exit_code(self, tmp_path, capsys):
        scenario = medical_conflicting_scenario()
        mapping = tmp_path / "m.json"
        mapping.write_text(json.dumps(setting_to_json(scenario.setting)))
        source = tmp_path / "s.json"
        source.write_text(
            json.dumps(concrete_instance_to_json(scenario.source))
        )
        code = main(
            ["chase", "--mapping", str(mapping), "--source", str(source)]
        )
        assert code == 1
        assert "chase failed" in capsys.readouterr().err

    def test_missing_file_exits(self, mapping_file):
        with pytest.raises(SystemExit):
            main(["chase", "--mapping", mapping_file, "--source", "/nope.json"])


class TestNormalizeCommand:
    def test_conjunction_normalization(self, mapping_file, source_file, capsys):
        code = main(
            ["normalize", "--mapping", mapping_file, "--source", source_file]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "5 facts -> 9 facts" in captured.err  # Figure 5
        assert len(json.loads(captured.out)["facts"]) == 9

    def test_naive_normalization(self, source_file, capsys):
        code = main(["normalize", "--naive", "--source", source_file])
        assert code == 0
        captured = capsys.readouterr()
        assert "5 facts -> 14 facts" in captured.err  # Figure 6

    def test_mapping_required_without_naive(self, source_file):
        with pytest.raises(SystemExit):
            main(["normalize", "--source", source_file])


class TestQueryCommand:
    def test_certain_answers(self, mapping_file, source_file, capsys):
        code = main(
            [
                "query",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--query",
                "q(n, s) :- Emp(n, c, s)",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "(Ada, 18k)" in output and "[2013, inf)" in output
        assert "(Bob, 13k)" in output

    def test_union_query(self, mapping_file, source_file, capsys):
        code = main(
            [
                "query",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--query",
                "q(n) :- Emp(n, 'IBM', s); q(n) :- Emp(n, 'Google', s)",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "(Ada)" in output and "(Bob)" in output

    QUERY = "q(n, s) :- Emp(n, c, s)"

    def _query(self, mapping_file, source_file, *extra):
        return main(
            [
                "query",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--query",
                self.QUERY,
                *extra,
            ]
        )

    def test_scan_engine_agrees(self, mapping_file, source_file, capsys):
        assert self._query(mapping_file, source_file) == 0
        indexed = capsys.readouterr().out
        assert self._query(mapping_file, source_file, "--engine", "scan") == 0
        assert capsys.readouterr().out == indexed

    def test_incremental_replay_chain(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        log = str(tmp_path / "query.log")
        code = self._query(
            mapping_file, source_file, "--incremental", "--query-log", log
        )
        assert code == 0
        first = capsys.readouterr()
        assert "0 replayed" in first.err
        code = self._query(
            mapping_file, source_file, "--incremental", "--query-log", log
        )
        assert code == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "1 replayed, 0 evaluated" in second.err

    def test_incremental_requires_query_log(self, mapping_file, source_file):
        with pytest.raises(SystemExit):
            self._query(mapping_file, source_file, "--incremental")

    def test_query_log_requires_incremental(
        self, mapping_file, source_file, tmp_path
    ):
        with pytest.raises(SystemExit):
            self._query(
                mapping_file,
                source_file,
                "--query-log",
                str(tmp_path / "query.log"),
            )

    def test_incremental_rejects_scan_engine(
        self, mapping_file, source_file, tmp_path
    ):
        with pytest.raises(SystemExit):
            self._query(
                mapping_file,
                source_file,
                "--engine",
                "scan",
                "--incremental",
                "--query-log",
                str(tmp_path / "query.log"),
            )

    def test_corrupt_query_log_rejected(
        self, mapping_file, source_file, tmp_path
    ):
        log = tmp_path / "query.log"
        log.write_bytes(b"not a pickle")
        with pytest.raises(SystemExit):
            self._query(
                mapping_file,
                source_file,
                "--incremental",
                "--query-log",
                str(log),
            )


class TestVerifyAndFigures:
    def test_verify_success(self, mapping_file, source_file, capsys):
        code = main(
            ["verify", "--mapping", mapping_file, "--source", source_file]
        )
        assert code == 0
        assert "correspondence holds" in capsys.readouterr().out

    def test_verify_reports_joint_failure(self, tmp_path, capsys):
        scenario = medical_conflicting_scenario()
        mapping = tmp_path / "m.json"
        mapping.write_text(json.dumps(setting_to_json(scenario.setting)))
        source = tmp_path / "s.json"
        source.write_text(json.dumps(concrete_instance_to_json(scenario.source)))
        code = main(["verify", "--mapping", str(mapping), "--source", str(source)])
        assert code == 0
        assert "both chases fail" in capsys.readouterr().out

    def test_figures_prints_everything(self, capsys):
        code = main(["figures"])
        assert code == 0
        output = capsys.readouterr().out
        for marker in [
            "Figure 1",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 9",
            "Figure 10",
            "holds: True",
        ]:
            assert marker in output


class TestEngineAndShardFlags:
    def test_chase_engine_rescan_matches_delta(
        self, mapping_file, source_file, tmp_path
    ):
        out_delta = tmp_path / "delta.json"
        out_rescan = tmp_path / "rescan.json"
        assert (
            main(
                [
                    "chase",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--engine",
                    "delta",
                    "--out",
                    str(out_delta),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "chase",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--engine",
                    "rescan",
                    "--out",
                    str(out_rescan),
                ]
            )
            == 0
        )
        assert json.loads(out_delta.read_text()) == json.loads(
            out_rescan.read_text()
        )

    def test_verify_with_shards_prints_reports(
        self, mapping_file, source_file, capsys
    ):
        code = main(
            [
                "verify",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--shards",
                "2",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "correspondence holds" in captured.out
        assert "shard 0:" in captured.err and "shard 1:" in captured.err

    def test_verify_engine_rescan(self, mapping_file, source_file, capsys):
        code = main(
            [
                "verify",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--engine",
                "rescan",
            ]
        )
        assert code == 0
        assert "correspondence holds" in capsys.readouterr().out


class TestSchedulerFlags:
    """PR 3: --shards/--executor/--incremental symmetric on chase/verify."""

    def test_chase_via_abstract_prints_snapshots(
        self, mapping_file, source_file, capsys
    ):
        code = main(
            [
                "chase",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--via",
                "abstract",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Emp(Ada, IBM" in out

    def test_chase_via_abstract_incremental_matches_off(
        self, mapping_file, source_file, capsys
    ):
        main(
            [
                "chase", "--mapping", mapping_file, "--source", source_file,
                "--via", "abstract", "--incremental", "on",
            ]
        )
        on_output = capsys.readouterr().out
        main(
            [
                "chase", "--mapping", mapping_file, "--source", source_file,
                "--via", "abstract", "--incremental", "off",
            ]
        )
        off_output = capsys.readouterr().out
        assert on_output == off_output

    def test_chase_accepts_shards_and_executor(
        self, mapping_file, source_file, capsys
    ):
        code = main(
            [
                "chase", "--mapping", mapping_file, "--source", source_file,
                "--via", "abstract", "--shards", "2", "--executor", "threads",
            ]
        )
        assert code == 0
        assert "shard 1:" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["chase", "verify"])
    def test_invalid_shards_fails_cleanly(
        self, command, mapping_file, source_file, capsys
    ):
        with pytest.raises(SystemExit) as exc_info:
            main(
                [
                    command, "--mapping", mapping_file, "--source", source_file,
                    "--shards", "0",
                ]
            )
        assert exc_info.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_verify_accepts_executor_and_incremental(
        self, mapping_file, source_file, capsys
    ):
        code = main(
            [
                "verify", "--mapping", mapping_file, "--source", source_file,
                "--shards", "2", "--executor", "threads",
                "--incremental", "off",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "correspondence holds" in captured.out
        assert "shard 0:" in captured.err

    @pytest.mark.parametrize(
        "extra",
        [["--out", "x.json"], ["--pretty"], ["--coalesce"],
         ["--normalization", "naive"]],
    )
    def test_via_abstract_rejects_concrete_only_flags(
        self, extra, mapping_file, source_file
    ):
        with pytest.raises(SystemExit, match="concrete c-chase only"):
            main(
                [
                    "chase", "--mapping", mapping_file, "--source",
                    source_file, "--via", "abstract", *extra,
                ]
            )

    def test_concrete_chase_rejects_scheduler_flags(
        self, mapping_file, source_file
    ):
        with pytest.raises(SystemExit, match="add --via abstract"):
            main(
                [
                    "chase", "--mapping", mapping_file, "--source",
                    source_file, "--shards", "2",
                ]
            )


class TestNormLogPersistence:
    def test_chase_writes_and_replays_log(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        log = tmp_path / "norm.log"
        out1 = tmp_path / "first.json"
        assert (
            main(
                [
                    "chase",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--norm-log",
                    str(log),
                    "--out",
                    str(out1),
                ]
            )
            == 0
        )
        assert log.exists()
        out2 = tmp_path / "second.json"
        assert (
            main(
                [
                    "chase",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--norm-log",
                    str(log),
                    "--out",
                    str(out2),
                ]
            )
            == 0
        )
        assert out1.read_text() == out2.read_text()

    def test_incremental_off_skips_log(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        log = tmp_path / "norm.log"
        code = main(
            [
                "chase",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--norm-log",
                str(log),
                "--incremental",
                "off",
                "--out",
                str(tmp_path / "out.json"),
            ]
        )
        assert code == 0
        assert not log.exists()

    def test_abstract_path_rejects_norm_log(
        self, mapping_file, source_file, tmp_path
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "chase",
                    "--via",
                    "abstract",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--norm-log",
                    str(tmp_path / "norm.log"),
                ]
            )
        assert "--norm-log" in str(excinfo.value)

    def test_corrupt_log_is_a_clean_error(
        self, mapping_file, source_file, tmp_path
    ):
        log = tmp_path / "norm.log"
        log.write_text("definitely not a pickle")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "chase",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--norm-log",
                    str(log),
                ]
            )
        assert "cannot read normalization log" in str(excinfo.value)

    def test_verify_honors_norm_log(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        log = tmp_path / "norm.log"
        assert (
            main(
                [
                    "verify",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--norm-log",
                    str(log),
                ]
            )
            == 0
        )
        assert log.exists()
        assert (
            main(
                [
                    "verify",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--norm-log",
                    str(log),
                ]
            )
            == 0
        )
        assert "correspondence holds" in capsys.readouterr().out

    def test_verify_incremental_off_skips_log(
        self, mapping_file, source_file, tmp_path, capsys
    ):
        log = tmp_path / "norm.log"
        code = main(
            [
                "verify",
                "--mapping",
                mapping_file,
                "--source",
                source_file,
                "--norm-log",
                str(log),
                "--incremental",
                "off",
            ]
        )
        assert code == 0
        assert not log.exists()

    def test_naive_normalization_rejects_norm_log(
        self, mapping_file, source_file, tmp_path
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "chase",
                    "--mapping",
                    mapping_file,
                    "--source",
                    source_file,
                    "--normalization",
                    "naive",
                    "--norm-log",
                    str(tmp_path / "norm.log"),
                ]
            )
        assert "--norm-log" in str(excinfo.value)


class TestIngestCommand:
    @pytest.fixture
    def event_files(self, tmp_path):
        from repro.workloads import org_event_mapping, org_event_stream

        events = org_event_stream(people=6, timeline=32, seed=4)
        stream = tmp_path / "events.jsonl"
        stream.write_text("\n".join(json.dumps(item) for item in events) + "\n")
        mapping = tmp_path / "event-mapping.json"
        mapping.write_text(json.dumps(org_event_mapping().to_json()))
        return str(stream), str(mapping)

    def test_snapshot_to_file(self, event_files, tmp_path, capsys):
        stream, mapping = event_files
        out = tmp_path / "snapshot.json"
        code = main(
            ["ingest", "--events", stream, "--event-mapping", mapping, "--out", str(out)]
        )
        assert code == 0
        assert "ingested" in capsys.readouterr().err
        payload = json.loads(out.read_text())
        assert payload["facts"]

    def test_snapshot_matches_library(self, event_files, tmp_path):
        from repro.events import EventLog, EventMapping

        stream, mapping = event_files
        out = tmp_path / "snapshot.json"
        assert (
            main(
                [
                    "ingest",
                    "--events",
                    stream,
                    "--event-mapping",
                    mapping,
                    "--at",
                    "12",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        log = EventLog(EventMapping.from_json(json.loads(open(mapping).read())))
        log.ingest(open(stream).read())
        expected = concrete_instance_to_json(log.snapshot_at(12))
        assert json.loads(out.read_text()) == expected

    def test_delta_between(self, event_files, capsys):
        stream, mapping = event_files
        code = main(
            [
                "ingest",
                "--events",
                stream,
                "--event-mapping",
                mapping,
                "--since",
                "8",
                "--until",
                "16",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"add", "remove"}

    def test_missing_events_file(self, event_files):
        _, mapping = event_files
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["ingest", "--events", "/no/such/file.jsonl", "--event-mapping", mapping]
            )
        assert "cannot read events" in str(excinfo.value)

    def test_stdin_input(self, event_files, capsys, monkeypatch, tmp_path):
        import io

        stream, mapping = event_files
        text = open(stream).read()
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        out = tmp_path / "snapshot.json"
        code = main(
            ["ingest", "--events", "-", "--event-mapping", mapping, "--out", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["facts"]
