"""Integration tests around failure modes and edge conditions."""

import pytest

from repro.abstract_view import abstract_chase, semantics
from repro.concrete import ConcreteInstance, c_chase, concrete_fact
from repro.dependencies import DataExchangeSetting
from repro.errors import ChaseFailureError
from repro.relational import Schema
from repro.temporal import Interval, interval


@pytest.fixture
def key_setting() -> DataExchangeSetting:
    return DataExchangeSetting.create(
        Schema.of(P=("K", "V")),
        Schema.of(T=("K", "V")),
        st_tgds=["P(k, v) -> T(k, v)"],
        egds=["T(k, v) & T(k, v2) -> v = v2"],
    )


class TestFailureBoundaries:
    def test_overlap_of_one_point_still_fails(self, key_setting):
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 5)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        assert c_chase(source, key_setting).failed

    def test_adjacent_stamps_never_fail(self, key_setting):
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 5)),
                concrete_fact("P", "a", "2", interval=Interval(5, 9)),
            ]
        )
        result = c_chase(source, key_setting)
        assert result.succeeded
        assert len(result.target) == 2

    def test_unbounded_overlap_fails(self, key_setting):
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=interval(3)),
                concrete_fact("P", "a", "2", interval=interval(1000)),
            ]
        )
        assert c_chase(source, key_setting).failed

    def test_failure_agrees_across_views(self, key_setting):
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 5)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        concrete = c_chase(source, key_setting)
        abstract = abstract_chase(semantics(source), key_setting)
        assert concrete.failed and abstract.failed
        # Both report the same clash pair.
        assert {str(concrete.failure.left), str(concrete.failure.right)} == {
            str(abstract.failure.left),
            str(abstract.failure.right),
        }

    def test_failure_under_naive_normalization_too(self, key_setting):
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 5)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        assert c_chase(source, key_setting, normalization="naive").failed

    def test_unwrap_raises_with_context(self, key_setting):
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 5)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        with pytest.raises(ChaseFailureError) as err:
            c_chase(source, key_setting).unwrap()
        assert err.value.left is not None


class TestEdgeInstances:
    def test_single_point_intervals(self, key_setting):
        source = ConcreteInstance(
            [concrete_fact("P", "a", "1", interval=Interval(5, 6))]
        )
        result = c_chase(source, key_setting)
        assert result.succeeded
        assert len(result.target) == 1

    def test_far_future_stamps(self, key_setting):
        source = ConcreteInstance(
            [concrete_fact("P", "a", "1", interval=Interval(10**9, 10**9 + 5))]
        )
        result = c_chase(source, key_setting)
        assert result.succeeded

    def test_no_dependencies_setting(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("K",)), Schema.of(T=("K",))
        )
        source = ConcreteInstance(
            [concrete_fact("P", "a", interval=Interval(0, 5))]
        )
        result = c_chase(source, setting)
        assert result.succeeded and len(result.target) == 0

    def test_source_relations_unused_by_mapping(self, key_setting):
        source = ConcreteInstance(
            [concrete_fact("P", "a", "1", interval=Interval(0, 5))]
        )
        # Extra relation not mentioned by the mapping: rejected by the
        # schema-checked setting? No — the instance is schema-free, the
        # chase simply ignores unmatched relations.
        source.add(concrete_fact("Z", "noise", interval=Interval(0, 9)))
        result = c_chase(source, key_setting)
        assert result.succeeded
        assert result.target.relation_names() == ("T",)
