"""Integration tests over the domain scenarios (intro of the paper)."""

import pytest

from repro.concrete import c_chase
from repro.correspondence import concrete_is_solution, verify_correspondence
from repro.query import (
    ConjunctiveQuery,
    certain_answers_concrete,
    verify_evaluation_correspondence,
)
from repro.relational import Constant
from repro.temporal import Interval, IntervalSet, interval
from repro.workloads import (
    medical_scenario,
    ride_share_scenario,
    scheduling_scenario,
)

ALL_SCENARIOS = [medical_scenario, scheduling_scenario, ride_share_scenario]


def row(*values):
    return tuple(Constant(v) for v in values)


class TestScenarioPipelines:
    @pytest.mark.parametrize("builder", ALL_SCENARIOS)
    def test_exchange_produces_solution(self, builder):
        scenario = builder()
        result = c_chase(scenario.source, scenario.setting)
        assert result.succeeded
        assert concrete_is_solution(scenario.source, result.target, scenario.setting)

    @pytest.mark.parametrize("builder", ALL_SCENARIOS)
    def test_correspondence(self, builder):
        scenario = builder()
        assert verify_correspondence(scenario.source, scenario.setting).holds

    @pytest.mark.parametrize("builder", ALL_SCENARIOS)
    def test_source_is_coalesced(self, builder):
        scenario = builder()
        assert scenario.source.is_coalesced()


class TestMedicalAnswers:
    def test_diagnosis_timeline(self):
        scenario = medical_scenario()
        query = ConjunctiveQuery.parse("q(c) :- Case('alice', w, c)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        # Diagnosed from day 4 only; days 1-3 are unknown.
        assert answers.support(row("arrhythmia")) == IntervalSet.of(Interval(4, 10))

    def test_attending_certain(self):
        scenario = medical_scenario()
        query = ConjunctiveQuery.parse("q(p, d) :- Attending(p, d)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        assert answers.support(row("bob", "dr_silva")) == IntervalSet.of(
            Interval(6, 9)
        )
        assert answers.support(row("bob", "dr_kaur")) == IntervalSet.of(interval(9))


class TestRideShareAnswers:
    def test_metered_rates_certain(self):
        scenario = ride_share_scenario()
        query = ConjunctiveQuery.parse("q(r) :- Fleet('cab7', z, r)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        assert answers.support(row("2.40")) == IntervalSet.of(Interval(0, 8))
        assert answers.support(row("3.10")) == IntervalSet.of(interval(8))

    def test_unmetered_bike_has_no_certain_rate(self):
        scenario = ride_share_scenario()
        query = ConjunctiveQuery.parse("q(r) :- Fleet('bike3', z, r)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        assert len(answers) == 0

    def test_bike_deployment_itself_certain(self):
        scenario = ride_share_scenario()
        query = ConjunctiveQuery.parse("q(z) :- Fleet('bike3', z, r)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        assert answers.support(row("riverside")) == IntervalSet.of(Interval(2, 20))

    def test_driver_handover(self):
        scenario = ride_share_scenario()
        query = ConjunctiveQuery.parse("q(d) :- Operates('cab7', d)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        assert answers.support(row("dana")) == IntervalSet.of(Interval(0, 9))
        assert answers.support(row("errol")) == IntervalSet.of(interval(9))

    def test_theorem21_on_ride_share(self):
        scenario = ride_share_scenario()
        solution = c_chase(scenario.source, scenario.setting).unwrap()
        query = ConjunctiveQuery.parse("q(v, z) :- Fleet(v, z, r)")
        assert verify_evaluation_correspondence(query, solution)


class TestSchedulingAnswers:
    def test_phase_certain(self):
        scenario = scheduling_scenario()
        query = ConjunctiveQuery.parse("q(ph) :- Active('apollo', ph)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        assert answers.support(row("build")) == IntervalSet.of(Interval(6, 14))

    def test_uncontracted_engineer_not_certain(self):
        scenario = scheduling_scenario()
        query = ConjunctiveQuery.parse("q(f) :- Staff('noor', p, f)")
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        assert len(answers) == 0
