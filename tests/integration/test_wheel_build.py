"""The offline setup.py shim must build valid *plain* wheels.

PR 1 made `pip install -e . --no-build-isolation` work without the
third-party ``wheel`` package; this extends the shim to plain wheel
builds (``pip install .``).  The test drives ``setup.py bdist_wheel``
in a subprocess with ``REPRO_FORCE_WHEEL_SHIM=1`` so the shim path is
exercised even on machines where setuptools bundles its own
``bdist_wheel``, then validates the wheel the way pip would: zip
integrity, RECORD hashes, METADATA/WHEEL files, package payload.
"""

from __future__ import annotations

import base64
import hashlib
import os
import subprocess
import sys
import zipfile
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def built_wheel(tmp_path_factory) -> Path:
    dist_dir = tmp_path_factory.mktemp("dist")
    build_dir = tmp_path_factory.mktemp("build")
    env = dict(os.environ)
    env["REPRO_FORCE_WHEEL_SHIM"] = "1"
    result = subprocess.run(
        [
            sys.executable,
            "setup.py",
            "build",
            "--build-base",
            str(build_dir),
            "bdist_wheel",
            "--dist-dir",
            str(dist_dir),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    wheels = list(dist_dir.glob("*.whl"))
    assert len(wheels) == 1, wheels
    return wheels[0]


class TestShimWheel:
    def test_wheel_name_and_tag(self, built_wheel: Path):
        assert built_wheel.name.endswith("-py3-none-any.whl")
        assert built_wheel.name.startswith("repro_temporal_data_exchange-")

    def test_zip_is_valid_and_contains_package(self, built_wheel: Path):
        with zipfile.ZipFile(built_wheel) as archive:
            assert archive.testzip() is None
            names = archive.namelist()
        assert "repro/__init__.py" in names
        assert "repro/chase/engine.py" in names
        assert "repro/cli.py" in names

    def test_dist_info_is_complete(self, built_wheel: Path):
        with zipfile.ZipFile(built_wheel) as archive:
            names = archive.namelist()
            dist_info = {
                name.split("/", 1)[0]
                for name in names
                if name.endswith(".dist-info/METADATA")
            }
            assert len(dist_info) == 1
            prefix = dist_info.pop()
            metadata = archive.read(f"{prefix}/METADATA").decode("utf-8")
            wheel_meta = archive.read(f"{prefix}/WHEEL").decode("utf-8")
        assert "Name: repro-temporal-data-exchange" in metadata
        assert "Wheel-Version: 1.0" in wheel_meta
        assert "Tag: py3-none-any" in wheel_meta

    def test_record_hashes_verify(self, built_wheel: Path):
        """Every RECORD entry must carry the member's real sha256 — this
        is exactly what pip checks at install time."""
        with zipfile.ZipFile(built_wheel) as archive:
            record_name = next(
                name
                for name in archive.namelist()
                if name.endswith(".dist-info/RECORD")
            )
            record = archive.read(record_name).decode("utf-8")
            entries = [
                line.split(",")
                for line in record.splitlines()
                if line.strip()
            ]
            recorded = {entry[0]: (entry[1], entry[2]) for entry in entries}
            for name in archive.namelist():
                if name == record_name:
                    assert recorded[name] == ("", "")
                    continue
                digest, size = recorded[name]
                payload = archive.read(name)
                assert int(size) == len(payload), name
                expected = (
                    "sha256="
                    + base64.urlsafe_b64encode(
                        hashlib.sha256(payload).digest()
                    )
                    .rstrip(b"=")
                    .decode("ascii")
                )
                assert digest == expected, name
            # RECORD covers exactly the archive members.
            assert set(recorded) == set(archive.namelist())
