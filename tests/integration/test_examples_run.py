"""Every example script must run cleanly and print its headline results."""

import pathlib
import subprocess
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    script = EXAMPLES_DIR / name
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Figure 9" in out
        assert "⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧): True" in out
        assert "(Ada, 18k)" in out

    def test_medical_records(self):
        out = run_example("medical_records.py")
        assert "chase failed: True" in out
        assert "arrhythmia" in out

    def test_project_scheduling(self):
        out = run_example("project_scheduling.py")
        assert "Algorithm 1" in out
        assert "mira" in out

    def test_query_answering(self):
        out = run_example("query_answering.py")
        assert "holds: True" in out
        assert "certain(q, ⟦Ic⟧, M)" in out

    def test_temporal_constraints(self):
        out = run_example("temporal_constraints.py")
        assert "witnesses placed: 2" in out
        assert "chase failed: True" in out

    def test_ride_share(self):
        out = run_example("ride_share.py")
        assert "no certain answers" in out
        assert "(dana)" in out and "(errol)" in out

    def test_event_stream(self):
        out = run_example("event_stream.py")
        assert "byte-identical snapshot: True" in out
        assert "pending after final batch: 0" in out
        assert "live view ≡ cold chase: True" in out
