"""Pre/post-overhaul equivalence: the chase output is byte-identical.

The chase hot path was overhauled (incremental indexes, cardinality-
driven homomorphism search, batched union-find egd rounds).  These
goldens were captured from the pre-overhaul per-equation implementation
on the paper's employment example and the domain scenarios; the current
implementation must reproduce them *exactly* — same solutions, same
failure records, same trace step counts, same deterministic egd step
sequence (null names included).
"""

from repro.chase import chase_snapshot
from repro.concrete import c_chase
from repro.workloads import (
    employment_setting,
    employment_source_concrete,
    medical_conflicting_scenario,
    medical_scenario,
    ride_share_scenario,
    scheduling_scenario,
)

# Captured from the pre-overhaul implementation (seed commit).
CCHASE_GOLDENS = {
    "employment": {
        "failed": False,
        "target": [
            "Emp+(Ada, Google, 18k, [2014, inf))",
            "Emp+(Ada, IBM, 18k, [2013, 2014))",
            "Emp+(Ada, IBM, N2^[2012, 2013), [2012, 2013))",
            "Emp+(Bob, IBM, 13k, [2015, 2018))",
            "Emp+(Bob, IBM, N4^[2013, 2015), [2013, 2015))",
        ],
        "tgd_steps": 8,
        "egd_steps": [
            ("ε1+", "N1^[2014, inf)", "18k"),
            ("ε1+", "N3^[2013, 2014)", "18k"),
            ("ε1+", "N5^[2015, 2018)", "13k"),
        ],
        "trace_len": 11,
        "failure": None,
        "normalized_source_size": 9,
        "pre_egd_size": 8,
    },
    "medical": {
        "failed": False,
        "target": [
            "Attending+(alice, dr_wu, [1, 10))",
            "Attending+(bob, dr_kaur, [9, inf))",
            "Attending+(bob, dr_silva, [6, 9))",
            "Case+(alice, cardio, N1^[1, 4), [1, 4))",
            "Case+(alice, cardio, arrhythmia, [4, 10))",
            "Case+(bob, neuro, N3^[12, inf), [12, inf))",
            "Case+(bob, neuro, N4^[6, 8), [6, 8))",
            "Case+(bob, neuro, migraine, [8, 12))",
        ],
        "tgd_steps": 10,
        "egd_steps": [
            ("ε1+", "N2^[4, 10)", "arrhythmia"),
            ("ε1+", "N5^[8, 12)", "migraine"),
        ],
        "trace_len": 12,
        "failure": None,
        "normalized_source_size": 10,
        "pre_egd_size": 10,
    },
    "scheduling": {
        "failed": False,
        "target": [
            "Active+(apollo, build, [6, 14))",
            "Active+(apollo, design, [0, 6))",
            "Active+(apollo, test, [14, 18))",
            "Active+(hermes, build, [9, inf))",
            "Active+(hermes, design, [4, 9))",
            "Staff+(mira, apollo, 120, [0, 10))",
            "Staff+(mira, apollo, 140, [10, 14))",
            "Staff+(mira, hermes, 140, [14, inf))",
            "Staff+(noor, apollo, N4^[2, 18), [2, 18))",
            "Staff+(ravi, hermes, 95, [6, inf))",
            "Staff+(ravi, hermes, N5^[4, 6), [4, 6))",
        ],
        "tgd_steps": 15,
        "egd_steps": [
            ("ε1+", "N1^[0, 10)", "120"),
            ("ε1+", "N2^[10, 14)", "140"),
            ("ε1+", "N3^[14, inf)", "140"),
            ("ε1+", "N6^[6, inf)", "95"),
        ],
        "trace_len": 19,
        "failure": None,
        "normalized_source_size": 15,
        "pre_egd_size": 15,
    },
    "ride-share": {
        "failed": False,
        "target": [
            "Fleet+(bike3, riverside, N1^[2, 20), [2, 20))",
            "Fleet+(cab7, airport, 3.10, [12, inf))",
            "Fleet+(cab7, downtown, 2.40, [0, 8))",
            "Fleet+(cab7, downtown, 3.10, [8, 12))",
            "Operates+(cab7, dana, [0, 9))",
            "Operates+(cab7, errol, [9, inf))",
        ],
        "tgd_steps": 9,
        "egd_steps": [
            ("ε1+", "N2^[12, inf)", "3.10"),
            ("ε1+", "N3^[0, 8)", "2.40"),
            ("ε1+", "N4^[8, 12)", "3.10"),
        ],
        "trace_len": 12,
        "failure": None,
        "normalized_source_size": 9,
        "pre_egd_size": 9,
    },
    "medical-conflict": {
        "failed": True,
        "target": [
            "Attending+(alice, dr_wu, [1, 10))",
            "Attending+(bob, dr_kaur, [9, inf))",
            "Attending+(bob, dr_silva, [6, 9))",
            "Case+(alice, cardio, N1^[1, 4), [1, 4))",
            "Case+(alice, cardio, N3^[5, 8), [5, 8))",
            "Case+(alice, cardio, N4^[8, 10), [8, 10))",
            "Case+(alice, cardio, arrhythmia, [4, 5))",
            "Case+(alice, cardio, arrhythmia, [5, 8))",
            "Case+(alice, cardio, arrhythmia, [8, 10))",
            "Case+(alice, cardio, flutter, [5, 8))",
            "Case+(bob, neuro, N5^[12, inf), [12, inf))",
            "Case+(bob, neuro, N6^[6, 8), [6, 8))",
            "Case+(bob, neuro, N7^[8, 12), [8, 12))",
            "Case+(bob, neuro, migraine, [8, 12))",
        ],
        "tgd_steps": 15,
        "egd_steps": [("ε1+", "N2^[4, 5)", "arrhythmia")],
        "trace_len": 17,
        "failure": ("ε1+", "arrhythmia", "flutter"),
        "normalized_source_size": 15,
        "pre_egd_size": 15,
    },
}

SNAPSHOT_GOLDENS = {
    2012: {"target": ["Emp(Ada, IBM, N1)"], "tgd_steps": 1, "egd_steps": []},
    2013: {
        "target": ["Emp(Ada, IBM, 18k)", "Emp(Bob, IBM, N2)"],
        "tgd_steps": 3,
        "egd_steps": [("ε1", "N1", "18k")],
    },
    2014: {
        "target": ["Emp(Ada, Google, 18k)", "Emp(Bob, IBM, N2)"],
        "tgd_steps": 3,
        "egd_steps": [("ε1", "N1", "18k")],
    },
    2015: {
        "target": ["Emp(Ada, Google, 18k)", "Emp(Bob, IBM, 13k)"],
        "tgd_steps": 4,
        "egd_steps": [("ε1", "N1", "18k"), ("ε1", "N2", "13k")],
    },
    2016: {
        "target": ["Emp(Ada, Google, 18k)", "Emp(Bob, IBM, 13k)"],
        "tgd_steps": 4,
        "egd_steps": [("ε1", "N1", "18k"), ("ε1", "N2", "13k")],
    },
    2018: {
        "target": ["Emp(Ada, Google, 18k)"],
        "tgd_steps": 2,
        "egd_steps": [("ε1", "N1", "18k")],
    },
}


def _scenarios():
    employment = employment_setting(), employment_source_concrete()
    yield "employment", employment[0], employment[1]
    for scenario in (
        medical_scenario(),
        scheduling_scenario(),
        ride_share_scenario(),
        medical_conflicting_scenario(),
    ):
        yield scenario.name, scenario.setting, scenario.source


class TestCChaseGoldens:
    def test_all_scenarios_match_pre_overhaul_behaviour(self):
        for name, setting, source in _scenarios():
            golden = CCHASE_GOLDENS[name]
            result = c_chase(source, setting)
            assert result.failed == golden["failed"], name
            assert sorted(str(f) for f in result.target.facts()) == golden[
                "target"
            ], name
            assert len(result.trace.tgd_steps) == golden["tgd_steps"], name
            assert [
                (s.dependency, str(s.replaced), str(s.replacement))
                for s in result.trace.egd_steps
            ] == golden["egd_steps"], name
            assert len(result.trace) == golden["trace_len"], name
            failure = result.failure
            if golden["failure"] is None:
                assert failure is None, name
            else:
                assert failure is not None, name
                assert (
                    failure.dependency,
                    str(failure.left),
                    str(failure.right),
                ) == golden["failure"], name
            assert (
                len(result.normalized_source)
                == golden["normalized_source_size"]
            ), name
            assert len(result.pre_egd_target) == golden["pre_egd_size"], name


class TestSnapshotChaseGoldens:
    def test_employment_snapshots_match_pre_overhaul_behaviour(self):
        setting = employment_setting()
        source = employment_source_concrete()
        for point, golden in SNAPSHOT_GOLDENS.items():
            result = chase_snapshot(source.snapshot(point), setting)
            assert result.succeeded, point
            assert (
                sorted(str(f) for f in result.target.facts())
                == golden["target"]
            ), point
            assert len(result.trace.tgd_steps) == golden["tgd_steps"], point
            assert [
                (s.dependency, str(s.replaced), str(s.replacement))
                for s in result.trace.egd_steps
            ] == golden["egd_steps"], point
