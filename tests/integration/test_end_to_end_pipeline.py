"""End-to-end integration: source → normalize → chase → query → serialize."""

from repro import (
    ConjunctiveQuery,
    c_chase,
    certain_answers_abstract,
    certain_answers_concrete,
    naive_evaluate_concrete,
    semantics,
    verify_evaluation_correspondence,
)
from repro.correspondence import concrete_is_solution, verify_correspondence
from repro.serialize import (
    instance_from_csv_dict,
    instance_to_csv_dict,
    loads,
    dumps,
)
from repro.workloads import exchange_setting_join, random_employment_history


class TestFullPipeline:
    def test_employment_pipeline(self, setting, source):
        # Exchange.
        result = c_chase(source, setting)
        assert result.succeeded
        solution = result.target
        assert concrete_is_solution(source, solution, setting)

        # Query (two routes must agree — Corollary 22).
        query = ConjunctiveQuery.parse("q(n, c, s) :- Emp(n, c, s)")
        concrete_route = certain_answers_concrete(query, source, setting)
        abstract_route = certain_answers_abstract(
            query, semantics(source), setting
        )
        assert concrete_route == abstract_route

        # Serialize the solution and query the restored copy.
        restored = loads(dumps(solution))
        assert naive_evaluate_concrete(query, restored) == naive_evaluate_concrete(
            query, solution
        )

    def test_pipeline_on_generated_data(self):
        setting = exchange_setting_join()
        workload = random_employment_history(people=5, timeline=25, seed=11)
        result = c_chase(workload.instance, setting)
        assert result.succeeded
        assert concrete_is_solution(workload.instance, result.target, setting)

        query = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        assert verify_evaluation_correspondence(query, result.target)

        tables = instance_to_csv_dict(result.target)
        assert instance_from_csv_dict(tables) == result.target

    def test_correspondence_on_larger_history(self):
        setting = exchange_setting_join()
        workload = random_employment_history(people=6, timeline=30, seed=23)
        assert verify_correspondence(workload.instance, setting).holds

    def test_chase_idempotence_through_views(self, setting, source):
        # Chasing the (already solved) semantics again must not change
        # certain answers: the solution is stable.
        query = ConjunctiveQuery.parse("q(n, c) :- Emp(n, c, s)")
        first = certain_answers_concrete(query, source, setting)
        second = certain_answers_concrete(query, source, setting)
        assert first == second


class TestNormalizationInteroperability:
    def test_naive_and_smart_chases_agree_semantically(self):
        from repro.abstract_view import homomorphically_equivalent

        setting = exchange_setting_join()
        workload = random_employment_history(people=4, timeline=18, seed=5)
        smart = c_chase(workload.instance, setting, normalization="conjunction")
        naive = c_chase(workload.instance, setting, normalization="naive")
        assert smart.succeeded and naive.succeeded
        assert homomorphically_equivalent(
            semantics(smart.target), semantics(naive.target)
        )

    def test_certain_answers_invariant_under_normalization_choice(
        self, setting, source
    ):
        query = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        smart_solution = c_chase(
            source, setting, normalization="conjunction"
        ).unwrap()
        naive_solution = c_chase(source, setting, normalization="naive").unwrap()
        assert (
            naive_evaluate_concrete(query, smart_solution).to_temporal()
            == naive_evaluate_concrete(query, naive_solution).to_temporal()
        )
