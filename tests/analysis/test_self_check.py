"""The tree's own source must stay clean under the invariant linter.

This is the enforcement half of the analyzer: the fixture tests prove
the rules *can* fire; this test proves nothing in ``src/`` makes them
fire — which is exactly what ``make analyze`` gates in CI.
"""

from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean():
    findings, checked = analyze_paths([REPO_ROOT / "src"])
    rendered = "\n".join(item.render() for item in findings)
    assert not findings, f"invariant linter findings in src/:\n{rendered}"
    # Sanity: the walk actually visited the tree.
    assert checked > 50
