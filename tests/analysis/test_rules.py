"""Each rule fires on its known-bad fixture and stays quiet on the good one."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_file

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

RULES = ["TDX001", "TDX002", "TDX003", "TDX004", "TDX005", "TDX006"]


def fixture(code: str, kind: str) -> Path:
    return FIXTURES / f"{code.lower()}_{kind}.py"


@pytest.mark.parametrize("code", RULES)
def test_bad_fixture_fires_exactly_its_rule(code):
    findings = analyze_file(fixture(code, "bad"))
    assert findings, f"{code} did not fire on its bad fixture"
    assert {item.rule for item in findings} == {code}


@pytest.mark.parametrize("code", RULES)
def test_good_fixture_is_clean_under_every_rule(code):
    assert analyze_file(fixture(code, "good")) == []


@pytest.mark.parametrize("code", RULES)
def test_cli_exits_nonzero_on_bad_fixture(code):
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(fixture(code, "bad"))],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 1
    assert code in result.stdout


def test_cli_exits_zero_on_good_fixtures():
    argv = [sys.executable, "-m", "repro.analysis"]
    argv += [str(fixture(code, "good")) for code in RULES]
    result = subprocess.run(argv, capture_output=True, text=True, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stdout


def test_select_limits_to_one_rule():
    # tdx005_bad also contains plain functions; selecting TDX006 there
    # must come back empty.
    assert analyze_file(fixture("TDX005", "bad"), select=["TDX006"]) == []
    assert analyze_file(fixture("TDX005", "bad"), select=["TDX005"])
