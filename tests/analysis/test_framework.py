"""Framework behaviour: suppressions, rationales, CLI formats, registry."""

import json

import pytest

from repro.analysis import META_RULE, all_rules, analyze_file, module_name_for
from repro.analysis.__main__ import main

BAD_TDX006 = "import random\n"


def write(tmp_path, text, name="snippet.py"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


def test_registry_has_the_six_rules_sorted():
    codes = [rule.code for rule in all_rules()]
    assert codes == ["TDX001", "TDX002", "TDX003", "TDX004", "TDX005", "TDX006"]
    assert all(rule.name and rule.summary for rule in all_rules())


def test_on_line_suppression_with_rationale(tmp_path):
    path = write(
        tmp_path,
        "import random  # repro: ignore[TDX006]: seeded below, test helper\n",
    )
    assert analyze_file(path) == []


def test_standalone_suppression_covers_next_statement(tmp_path):
    path = write(
        tmp_path,
        "# repro: ignore[TDX006]: seeded below, test helper\nimport random\n",
    )
    assert analyze_file(path) == []


def test_suppression_without_rationale_is_reported_and_ineffective(tmp_path):
    path = write(tmp_path, "import random  # repro: ignore[TDX006]\n")
    findings = analyze_file(path)
    assert {item.rule for item in findings} == {META_RULE, "TDX006"}


def test_suppression_with_unknown_code_is_reported(tmp_path):
    path = write(tmp_path, "import random  # repro: ignore[TDX9999]: nope\n")
    assert META_RULE in {item.rule for item in analyze_file(path)}


def test_meta_rule_is_not_suppressible(tmp_path):
    path = write(
        tmp_path,
        "import random  # repro: ignore[TDX000]: trying to silence the meta rule\n",
    )
    findings = analyze_file(path)
    assert {item.rule for item in findings} == {META_RULE, "TDX006"}


def test_suppression_of_wrong_code_does_not_mask_others(tmp_path):
    path = write(
        tmp_path,
        "import random  # repro: ignore[TDX001]: wrong rule entirely\n",
    )
    assert {item.rule for item in analyze_file(path)} == {"TDX006"}


def test_unparseable_file_is_a_meta_finding(tmp_path):
    path = write(tmp_path, "def broken(:\n")
    findings = analyze_file(path)
    assert len(findings) == 1 and findings[0].rule == META_RULE


def test_module_name_anchors_at_repro(tmp_path):
    from pathlib import Path

    assert module_name_for(Path("src/repro/temporal/interval.py")) == (
        "repro.temporal.interval"
    )
    assert module_name_for(Path("src/repro/analysis/__init__.py")) == "repro.analysis"
    assert module_name_for(Path("tests/analysis/fixtures/tdx001_bad.py")) == (
        "tdx001_bad"
    )


def test_cli_json_format(tmp_path, capsys):
    path = write(tmp_path, BAD_TDX006)
    code = main([str(path), "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "TDX006"
    assert payload["findings"][0]["line"] == 1


def test_cli_text_format_renders_location(tmp_path, capsys):
    path = write(tmp_path, BAD_TDX006)
    assert main([str(path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:1:1: TDX006" in out
    assert "1 finding in 1 files" in out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ["TDX001", "TDX006"]:
        assert code in out


def test_cli_unknown_select_is_usage_error(tmp_path, capsys):
    path = write(tmp_path, BAD_TDX006)
    assert main([str(path), "--select", "TDX999"]) == 2


def test_cli_select_filters(tmp_path, capsys):
    path = write(tmp_path, BAD_TDX006)
    assert main([str(path), "--select", "TDX001"]) == 0
    capsys.readouterr()


def test_duplicate_registration_rejected():
    from repro.analysis import Rule, register

    class Clash(Rule):
        code = "TDX006"
        name = "clash"
        summary = "duplicate"

    with pytest.raises(ValueError, match="duplicate rule code"):
        register(Clash)


def test_bad_code_registration_rejected():
    from repro.analysis import Rule, register

    class Meta(Rule):
        code = "TDX000"
        name = "meta"
        summary = "reserved"

    with pytest.raises(ValueError, match="TDX000"):
        register(Meta)
