"""Known-good: create/close/unlink paired on every control-flow path."""

from multiprocessing import shared_memory


def copy_once(payload: bytes) -> bytes:
    segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    try:
        segment.buf[: len(payload)] = payload
        data = bytes(segment.buf[: len(payload)])
    finally:
        segment.close()
        segment.unlink()
    return data
