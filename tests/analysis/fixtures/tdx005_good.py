"""Known-good: process-stable replay signatures (sort keys, not hash())."""


def remember(ledger, key, facts, payload):
    signature = tuple(sorted(fact.sort_key() for fact in facts))
    ledger.record(key, signature, payload)


def replay(ledger, key, facts):
    return ledger.recall(key, tuple(sorted(fact.sort_key() for fact in facts)))


def _decision_signature(facts):
    return frozenset(facts)
