"""Known-good: cached salted hash with identity-only pickling."""

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Interval:
    start: int
    end: int
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached == 0:
            cached = (self.start, self.end).__hash__() or -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self) -> tuple:
        return (self.start, self.end)

    def __setstate__(self, state: tuple) -> None:
        start, end = state
        object.__setattr__(self, "start", start)
        object.__setattr__(self, "end", end)
        object.__setattr__(self, "_hash", 0)
