"""Known-bad: salted hash() flowing into replay-ledger signatures.

``hash()`` is salted per process (PYTHONHASHSEED): a signature built
from it never matches on replay in another process, so every recorded
decision silently becomes a cache miss.
"""


def remember(ledger, key, facts, payload):
    signature = hash(frozenset(facts))
    ledger.record(key, signature, payload)


def replay(ledger, key, facts):
    return ledger.recall(key, hash(frozenset(facts)))


def _decision_signature(facts):
    return hash(tuple(sorted(str(fact) for fact in facts)))
