"""Known-bad: the PR 7 shared-memory leak class, reconstructed.

The segment is created and closed but never unlink()ed by anyone — the
backing /dev/shm block outlives the process.  A second function closes
only on the happy path.
"""

from multiprocessing import shared_memory


def publish(payload: bytes) -> str:
    segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    segment.buf[: len(payload)] = payload
    segment.close()
    return segment.name


def copy_once(payload: bytes) -> bytes:
    segment = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    segment.buf[: len(payload)] = payload
    data = bytes(segment.buf[: len(payload)])
    if data:
        # close()/unlink() only on the happy path: the empty-payload
        # branch leaks the mapping and the /dev/shm block.
        segment.close()
        segment.unlink()
    return data
