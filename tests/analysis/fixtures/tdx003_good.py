"""Known-good: ordered-output functions iterate sets through sorted()."""


# repro: ordered-output
def encode_trace(instance):
    merged = instance.facts_of("R") | instance.facts_of("S")
    return [str(fact) for fact in sorted(merged, key=lambda f: f.sort_key())]


# repro: ordered-output
def merge_regions(instance):
    lines = []
    for fact in sorted(instance.facts_of("Emp"), key=lambda f: f.sort_key()):
        lines.append(str(fact))
    # Order-insensitive consumption of a set needs no sorting.
    return lines, len({line for line in lines})
