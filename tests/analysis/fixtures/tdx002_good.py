"""Known-good: validating constructors only, outside the engine."""

from repro.temporal.interval import Interval


def rebuild(payload):
    return [Interval(start, end) for start, end in payload]
