"""Known-bad: an ordered-output function iterating sets in hash order.

The PR 4 premerge regression: a merge feeding the wire encode walked a
set, so two runs of the same exchange produced differently-ordered
traces (caught only by interleaved A/B benchmarking).
"""


# repro: ordered-output
def encode_trace(instance):
    merged = instance.facts_of("R") | instance.facts_of("S")
    return [str(fact) for fact in merged]


# repro: ordered-output
def merge_regions(instance):
    lines = []
    for fact in instance.facts_of("Emp"):
        lines.append(str(fact))
    return lines
