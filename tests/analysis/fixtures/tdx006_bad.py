"""Known-bad: wall-clock and RNG reads in a deterministic core module."""

import random
import time
from datetime import datetime


def pick_witness(candidates):
    return random.choice(sorted(candidates))


def stamp_trace(trace):
    trace.append(("at", time.time()))
    trace.append(("day", datetime.now().isoformat()))
    return trace
