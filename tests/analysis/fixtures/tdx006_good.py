"""Known-good: deterministic witness choice; monotonic duration clocks."""

import time


def pick_witness(candidates):
    return min(candidates)


def timed(run):
    started = time.perf_counter()
    result = run()
    return result, time.perf_counter() - started
