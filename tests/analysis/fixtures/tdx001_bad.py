"""Known-bad: the PR 5 stale-Interval-hash replay bug, reconstructed.

A frozen+slots dataclass caches its salted hash in an ``init=False``
field; without an identity-only ``__getstate__``/``__setstate__`` the
default slots pickling ships the cache, and the hash disagrees with
every hash computed in the receiving process — replay lookups silently
miss.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Interval:
    start: int
    end: int
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __hash__(self) -> int:
        cached = self._hash
        if cached == 0:
            cached = hash((self.start, self.end)) or -2
            object.__setattr__(self, "_hash", cached)
        return cached
