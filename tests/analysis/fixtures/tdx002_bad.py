"""Known-bad: trusted constructors called outside the engine boundary.

This module is not on the allowlist, so skipping validation here can
build facts whose construction invariants never held.
"""

from repro.temporal.interval import Interval


def rebuild(payload):
    return [Interval.make(start, end) for start, end in payload]


def refragment(fact, points):
    return fact.fragment_sorted(points)


def restore(interval_set_cls, pieces):
    return interval_set_cls._from_canonical(pieces)
