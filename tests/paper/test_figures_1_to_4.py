"""Exact reproduction of Figures 1–4 of the paper.

* Figure 1 — snapshots of the abstract employment instance;
* Figure 2 — the two abstract instances with nulls (via Example 2 tests
  in test_figure02_example2.py);
* Figure 3 — the abstract chase result, snapshot by snapshot;
* Figure 4 — the concrete source instance Ic.
"""

from repro.abstract_view import abstract_chase
from repro.concrete import concrete_fact
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.temporal import Interval, interval


class TestFigure1:
    """The abstract view of the employment database, year by year."""

    def test_2012(self, abstract_source):
        assert abstract_source.snapshot(2012) == Instance(
            [fact("E", "Ada", "IBM")]
        )

    def test_2013(self, abstract_source):
        assert abstract_source.snapshot(2013) == Instance(
            [
                fact("E", "Ada", "IBM"),
                fact("S", "Ada", "18k"),
                fact("E", "Bob", "IBM"),
            ]
        )

    def test_2014(self, abstract_source):
        assert abstract_source.snapshot(2014) == Instance(
            [
                fact("E", "Ada", "Google"),
                fact("S", "Ada", "18k"),
                fact("E", "Bob", "IBM"),
            ]
        )

    def test_2015_through_2017(self, abstract_source):
        expected = Instance(
            [
                fact("E", "Ada", "Google"),
                fact("S", "Ada", "18k"),
                fact("E", "Bob", "IBM"),
                fact("S", "Bob", "13k"),
            ]
        )
        for year in (2015, 2016, 2017):
            assert abstract_source.snapshot(year) == expected

    def test_2018_and_beyond(self, abstract_source):
        expected = Instance(
            [
                fact("E", "Ada", "Google"),
                fact("S", "Ada", "18k"),
                fact("S", "Bob", "13k"),
            ]
        )
        assert abstract_source.snapshot(2018) == expected
        assert abstract_source.snapshot(2050) == expected  # finite change

    def test_before_2012_empty(self, abstract_source):
        assert not abstract_source.snapshot(2011)


class TestFigure3:
    """chase(Ia, M) — the abstract universal solution, per Example 5."""

    def test_2012_unknown_salary(self, abstract_source, setting):
        target = abstract_chase(abstract_source, setting).unwrap()
        snap = target.snapshot(2012)
        (row,) = snap.facts_of("Emp")
        assert row.args[0] == Constant("Ada")
        assert row.args[1] == Constant("IBM")
        assert isinstance(row.args[2], LabeledNull)

    def test_2013_ada_known_bob_unknown(self, abstract_source, setting):
        target = abstract_chase(abstract_source, setting).unwrap()
        snap = target.snapshot(2013)
        assert fact("Emp", "Ada", "IBM", "18k") in snap
        (bob,) = [
            f for f in snap.facts_of("Emp") if f.args[0] == Constant("Bob")
        ]
        assert isinstance(bob.args[2], LabeledNull)
        assert len(snap) == 2

    def test_2014_bob_null_differs_from_2013(self, abstract_source, setting):
        # Figure 3 writes N' at 2013 and M at 2014: distinct unknowns.
        target = abstract_chase(abstract_source, setting).unwrap()
        bob_2013 = [
            f
            for f in target.snapshot(2013).facts_of("Emp")
            if f.args[0] == Constant("Bob")
        ][0]
        bob_2014 = [
            f
            for f in target.snapshot(2014).facts_of("Emp")
            if f.args[0] == Constant("Bob")
        ][0]
        assert bob_2013.args[2] != bob_2014.args[2]

    def test_2015_all_known(self, abstract_source, setting):
        target = abstract_chase(abstract_source, setting).unwrap()
        assert target.snapshot(2015) == Instance(
            [
                fact("Emp", "Ada", "Google", "18k"),
                fact("Emp", "Bob", "IBM", "13k"),
            ]
        )

    def test_2018_only_ada(self, abstract_source, setting):
        target = abstract_chase(abstract_source, setting).unwrap()
        assert target.snapshot(2018) == Instance(
            [fact("Emp", "Ada", "Google", "18k")]
        )


class TestFigure4:
    """The concrete source instance Ic, row by row."""

    def test_exact_contents(self, source):
        assert source.facts() == {
            concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2014)),
            concrete_fact("E", "Ada", "Google", interval=interval(2014)),
            concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2018)),
            concrete_fact("S", "Ada", "18k", interval=interval(2013)),
            concrete_fact("S", "Bob", "13k", interval=interval(2015)),
        }

    def test_coalesced_as_the_paper_assumes(self, source):
        assert source.is_coalesced()

    def test_complete_as_the_paper_assumes(self, source):
        assert source.is_complete

    def test_semantics_is_figure1(self, source, abstract_source):
        from repro.abstract_view import semantics

        assert semantics(source) == abstract_source
