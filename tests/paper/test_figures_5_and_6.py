"""Exact reproduction of Figure 5 (Algorithm 1) and Figure 6 (naïve).

Figure 5: Ic normalized w.r.t. ``E+(n,c,t) ∧ S+(n,s,t)`` — 9 facts.
Figure 6: Ic normalized by the naïve endpoint algorithm — 14 facts.
"""

from repro.concrete import concrete_fact, is_normalized, naive_normalize, normalize
from repro.temporal import Interval, interval
from repro.workloads import salary_conjunction


def figure5_expected() -> set:
    return {
        concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2013)),
        concrete_fact("E", "Ada", "IBM", interval=Interval(2013, 2014)),
        concrete_fact("E", "Ada", "Google", interval=interval(2014)),
        concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2015)),
        concrete_fact("E", "Bob", "IBM", interval=Interval(2015, 2018)),
        concrete_fact("S", "Ada", "18k", interval=Interval(2013, 2014)),
        concrete_fact("S", "Ada", "18k", interval=interval(2014)),
        concrete_fact("S", "Bob", "13k", interval=Interval(2015, 2018)),
        concrete_fact("S", "Bob", "13k", interval=interval(2018)),
    }


def figure6_expected() -> set:
    return {
        concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2013)),
        concrete_fact("E", "Ada", "IBM", interval=Interval(2013, 2014)),
        concrete_fact("E", "Ada", "Google", interval=Interval(2014, 2015)),
        concrete_fact("E", "Ada", "Google", interval=Interval(2015, 2018)),
        concrete_fact("E", "Ada", "Google", interval=interval(2018)),
        concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2014)),
        concrete_fact("E", "Bob", "IBM", interval=Interval(2014, 2015)),
        concrete_fact("E", "Bob", "IBM", interval=Interval(2015, 2018)),
        concrete_fact("S", "Ada", "18k", interval=Interval(2013, 2014)),
        concrete_fact("S", "Ada", "18k", interval=Interval(2014, 2015)),
        concrete_fact("S", "Ada", "18k", interval=Interval(2015, 2018)),
        concrete_fact("S", "Ada", "18k", interval=interval(2018)),
        concrete_fact("S", "Bob", "13k", interval=Interval(2015, 2018)),
        concrete_fact("S", "Bob", "13k", interval=interval(2018)),
    }


class TestFigure5:
    def test_exact_rows(self, source):
        normalized = normalize(source, [salary_conjunction()])
        assert normalized.facts() == figure5_expected()

    def test_nine_facts(self, source):
        assert len(normalize(source, [salary_conjunction()])) == 9

    def test_output_is_normalized(self, source):
        normalized = normalize(source, [salary_conjunction()])
        assert is_normalized(normalized, [salary_conjunction()])

    def test_semantics_unchanged(self, source):
        from repro.abstract_view import semantics

        normalized = normalize(source, [salary_conjunction()])
        assert semantics(normalized).same_snapshots_as(semantics(source))

    def test_example8_homomorphism_now_exists(self, source):
        # Example 8: after normalization, h maps the shared-t conjunction
        # with t ↦ [2014, ∞) and t ↦ [2013, 2014).
        from repro.concrete import find_temporal_homomorphisms, interval_of

        normalized = normalize(source, [salary_conjunction()])
        conj = salary_conjunction()
        stamps = {
            interval_of(assignment, conj.shared_variable)
            for assignment, _ in find_temporal_homomorphisms(conj, normalized)
        }
        assert Interval(2013, 2014) in stamps
        assert interval(2014) in stamps
        # ... while the original Ic admits NO such homomorphism at all.
        assert not list(find_temporal_homomorphisms(conj, source))


class TestFigure6:
    def test_exact_rows(self, source):
        assert naive_normalize(source).facts() == figure6_expected()

    def test_fourteen_facts(self, source):
        assert len(naive_normalize(source)) == 14

    def test_paper_comparison_naive_is_larger(self, source):
        # "the normalized instance in Figure 6 has more facts compared to
        #  the normalized instance shown in Figure 5"
        smart = normalize(source, [salary_conjunction()])
        naive = naive_normalize(source)
        assert len(naive) > len(smart)
        assert len(naive) == 14 and len(smart) == 9

    def test_naive_output_also_normalized(self, source):
        assert is_normalized(naive_normalize(source), [salary_conjunction()])
