"""Exact reproduction of Example 14 (Figures 7 and 8): Algorithm 1.

Five facts over R+, P+, S+ and Φ+ = {R∧P, P∧S}; the algorithm finds
S = {{f1,f2}, {f2,f3}, {f4,f5}}, merges the first two sets, and fragments
both components at their endpoint sequences TP∆1 = ⟨5,7,8,10,11,15⟩ and
TP∆2 = ⟨18,20,25,∞⟩.
"""

from repro.concrete import concrete_fact, is_normalized, normalize_with_report
from repro.temporal import Interval, interval
from repro.workloads import (
    algorithm1_example_conjunctions,
    algorithm1_example_instance,
)


def figure8_expected() -> set:
    return {
        # f1 = R+(a, [5,11)) fragments into four pieces
        concrete_fact("R", "a", interval=Interval(5, 7)),
        concrete_fact("R", "a", interval=Interval(7, 8)),
        concrete_fact("R", "a", interval=Interval(8, 10)),
        concrete_fact("R", "a", interval=Interval(10, 11)),
        # f2 = P+(a, [8,15)) fragments into three pieces
        concrete_fact("P", "a", interval=Interval(8, 10)),
        concrete_fact("P", "a", interval=Interval(10, 11)),
        concrete_fact("P", "a", interval=Interval(11, 15)),
        # f4 = P+(b, [20,25)) is NOT fragmented (its subsequence is ⟨20,25⟩)
        concrete_fact("P", "b", interval=Interval(20, 25)),
        # f3 = S+(a, [7,10)) fragments into two pieces
        concrete_fact("S", "a", interval=Interval(7, 8)),
        concrete_fact("S", "a", interval=Interval(8, 10)),
        # f5 = S+(b, [18,∞)) fragments into three pieces
        concrete_fact("S", "b", interval=Interval(18, 20)),
        concrete_fact("S", "b", interval=Interval(20, 25)),
        concrete_fact("S", "b", interval=interval(25)),
    }


class TestFigure7Input:
    def test_exact_input(self):
        inst = algorithm1_example_instance()
        assert inst.facts() == {
            concrete_fact("R", "a", interval=Interval(5, 11)),
            concrete_fact("P", "a", interval=Interval(8, 15)),
            concrete_fact("P", "b", interval=Interval(20, 25)),
            concrete_fact("S", "a", interval=Interval(7, 10)),
            concrete_fact("S", "b", interval=interval(18)),
        }


class TestFigure8Output:
    def test_exact_rows(self):
        output, _report = normalize_with_report(
            algorithm1_example_instance(), algorithm1_example_conjunctions()
        )
        assert output.facts() == figure8_expected()

    def test_thirteen_facts(self):
        output, _report = normalize_with_report(
            algorithm1_example_instance(), algorithm1_example_conjunctions()
        )
        assert len(output) == 13

    def test_algorithm_trace_matches_example(self):
        # S has three matched sets; merging leaves two components.
        _output, report = normalize_with_report(
            algorithm1_example_instance(), algorithm1_example_conjunctions()
        )
        assert report.matched_sets == 3
        assert report.components == 2
        assert report.facts_fragmented == 4  # f1, f2, f3, f5 (not f4)
        assert report.input_size == 5 and report.output_size == 13

    def test_theorem15_result_normalized(self):
        output, _report = normalize_with_report(
            algorithm1_example_instance(), algorithm1_example_conjunctions()
        )
        assert is_normalized(output, algorithm1_example_conjunctions())
