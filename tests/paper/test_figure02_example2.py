"""Figure 2 / Example 2: why condition 2 of abstract homomorphisms matters.

J1 carries the SAME labeled null N in snapshots db0 and db1; J2 carries
distinct nulls M1, M2.  The paper proves: a homomorphism J2 → J1 exists,
but none exists J1 → J2.
"""

from repro.abstract_view import (
    AbstractInstance,
    TemplateFact,
    find_abstract_homomorphism,
    has_abstract_homomorphism,
)
from repro.relational import Constant, LabeledNull
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval


def j1() -> AbstractInstance:
    """Emp(Ada, IBM, N) at db0 and db1 — one rigid unknown."""
    return AbstractInstance(
        [
            TemplateFact(
                "Emp",
                (Constant("Ada"), Constant("IBM"), LabeledNull("N")),
                Interval(0, 2),
            )
        ]
    )


def j2() -> AbstractInstance:
    """Emp(Ada, IBM, M1) at db0, Emp(Ada, IBM, M2) at db1 — fresh per snapshot."""
    return AbstractInstance(
        [
            TemplateFact(
                "Emp",
                (
                    Constant("Ada"),
                    Constant("IBM"),
                    AnnotatedNull("M", Interval(0, 2)),
                ),
                Interval(0, 2),
            )
        ]
    )


class TestExample2:
    def test_snapshots_have_the_claimed_shape(self):
        one, two = j1(), j2()
        # J1: same null at both snapshots.
        assert one.snapshot(0).nulls() == one.snapshot(1).nulls()
        # J2: disjoint nulls across snapshots.
        assert two.snapshot(0).nulls().isdisjoint(two.snapshot(1).nulls())

    def test_hom_exists_from_j2_to_j1(self):
        assert has_abstract_homomorphism(j2(), j1())

    def test_no_hom_from_j1_to_j2(self):
        assert not has_abstract_homomorphism(j1(), j2())

    def test_per_snapshot_homs_exist_but_disagree(self):
        # The crux of the example: snapshot-wise homs h0, h1 exist from J1
        # to J2, but h0(N) = M@0 ≠ M@1 = h1(N) violates condition 2.
        from repro.relational.homomorphism import find_instance_homomorphism

        one, two = j1(), j2()
        h0 = find_instance_homomorphism(one.snapshot(0), two.snapshot(0))
        h1 = find_instance_homomorphism(one.snapshot(1), two.snapshot(1))
        assert h0 is not None and h1 is not None
        assert h0[LabeledNull("N")] != h1[LabeledNull("N")]

    def test_witness_mapping_from_j2_to_j1(self):
        hom = find_abstract_homomorphism(j2(), j1())
        assert hom is not None
        # J2 has no rigid nulls, so the global mapping is empty — all the
        # work happens per snapshot (M@ℓ ↦ N).
        assert hom.rigid_mapping == {}
