"""Exact reproduction of Figure 9 / Example 17: the c-chase result.

The concrete solution for Ic (Figure 4) under the Example 6 mapping:

    Emp+(Ada, IBM,    N^[2012,2013),  [2012, 2013))
    Emp+(Ada, IBM,    18k,            [2013, 2014))
    Emp+(Ada, Google, 18k,            [2014, ∞))
    Emp+(Bob, IBM,    M^[2013,2015),  [2013, 2015))
    Emp+(Bob, IBM,    13k,            [2015, 2018))
"""

from repro.concrete import c_chase
from repro.relational import Constant
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval


def rows_by_stamp(result):
    return {
        (str(item.data[0]), str(item.data[1]), str(item.interval)): item
        for item in result.target.facts_of("Emp")
    }


class TestFigure9:
    def test_five_rows(self, setting, source):
        result = c_chase(source, setting)
        assert result.succeeded
        assert len(result.target) == 5
        assert result.target.relation_names() == ("Emp",)

    def test_known_salary_rows(self, setting, source):
        result = c_chase(source, setting)
        rows = rows_by_stamp(result)
        assert rows[("Ada", "IBM", "[2013, 2014)")].data[2] == Constant("18k")
        assert rows[("Ada", "Google", "[2014, inf)")].data[2] == Constant("18k")
        assert rows[("Bob", "IBM", "[2015, 2018)")].data[2] == Constant("13k")

    def test_ada_2012_unknown_with_annotation(self, setting, source):
        result = c_chase(source, setting)
        rows = rows_by_stamp(result)
        null = rows[("Ada", "IBM", "[2012, 2013)")].data[2]
        assert isinstance(null, AnnotatedNull)
        assert null.annotation == Interval(2012, 2013)

    def test_bob_2013_2015_unknown_with_annotation(self, setting, source):
        result = c_chase(source, setting)
        rows = rows_by_stamp(result)
        null = rows[("Bob", "IBM", "[2013, 2015)")].data[2]
        assert isinstance(null, AnnotatedNull)
        assert null.annotation == Interval(2013, 2015)

    def test_the_two_unknowns_are_distinct(self, setting, source):
        result = c_chase(source, setting)
        nulls = result.target.nulls()
        assert len(nulls) == 2
        bases = {null.base for null in nulls}
        assert len(bases) == 2  # N and M in the paper's naming

    def test_exact_stamps(self, setting, source):
        result = c_chase(source, setting)
        stamps = sorted(str(item.interval) for item in result.target.facts())
        assert stamps == [
            "[2012, 2013)",
            "[2013, 2014)",
            "[2013, 2015)",
            "[2014, inf)",
            "[2015, 2018)",
        ]

    def test_is_concrete_solution(self, setting, source):
        from repro.correspondence import concrete_is_solution

        result = c_chase(source, setting)
        assert concrete_is_solution(source, result.target, setting)

    def test_deterministic_output(self, setting, source):
        first = c_chase(source, setting).target
        second = c_chase(source, setting).target
        assert first == second

    def test_bob_merge_happened(self, setting, source):
        # Bob's [2015, 2018) fragment had BOTH a null (σ1) and 13k (σ2);
        # the egd step replaced the null by the constant everywhere.
        result = c_chase(source, setting)
        bob_rows = [
            f
            for f in result.target.facts_of("Emp")
            if f.data[0] == Constant("Bob") and f.interval == Interval(2015, 2018)
        ]
        assert len(bob_rows) == 1
        assert bob_rows[0].data[2] == Constant("13k")
        assert any(
            "13k" in str(step) for step in result.trace.egd_steps
        )
