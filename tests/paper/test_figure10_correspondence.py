"""Figure 10 / Theorem 19 / Corollary 20: the commuting square.

``⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧)`` — the semantics of the concrete chase
result is homomorphically equivalent to the abstract chase result, and
failures coincide (Theorem 19(2): a failing chase means no solution).
"""

import pytest

from repro.abstract_view import (
    abstract_chase,
    homomorphically_equivalent,
    is_solution,
    is_universal_solution,
    semantics,
)
from repro.concrete import ConcreteInstance, c_chase, concrete_fact
from repro.correspondence import verify_correspondence
from repro.dependencies import DataExchangeSetting
from repro.relational import Schema
from repro.temporal import Interval
from repro.workloads import (
    medical_conflicting_scenario,
    medical_scenario,
    random_employment_history,
    scheduling_scenario,
)


class TestRunningExample:
    def test_square_commutes(self, setting, source):
        report = verify_correspondence(source, setting)
        assert report.holds
        assert not report.both_failed
        assert report.equivalent

    def test_equivalence_direct(self, setting, source):
        concrete_solution = c_chase(source, setting).unwrap()
        abstract_solution = abstract_chase(semantics(source), setting).unwrap()
        assert homomorphically_equivalent(
            semantics(concrete_solution), abstract_solution
        )

    def test_theorem19_concrete_semantics_is_solution(self, setting, source):
        concrete_solution = c_chase(source, setting).unwrap()
        assert is_solution(
            semantics(source), semantics(concrete_solution), setting
        )

    def test_theorem19_universality_against_abstract_chase(
        self, setting, source
    ):
        # The abstract chase result is itself a solution; ⟦Jc⟧ must map
        # into it (and vice versa) — universality both ways.
        concrete_solution = c_chase(source, setting).unwrap()
        abstract_solution = abstract_chase(semantics(source), setting).unwrap()
        assert is_universal_solution(
            semantics(source),
            semantics(concrete_solution),
            setting,
            [abstract_solution],
        )


class TestScenarios:
    @pytest.mark.parametrize(
        "scenario_builder", [medical_scenario, scheduling_scenario]
    )
    def test_square_commutes(self, scenario_builder):
        scenario = scenario_builder()
        assert verify_correspondence(scenario.source, scenario.setting).holds


class TestFailureCorrespondence:
    def test_both_chases_fail_together(self):
        scenario = medical_conflicting_scenario()
        report = verify_correspondence(scenario.source, scenario.setting)
        assert report.holds
        assert report.both_failed
        assert report.concrete_result.failed
        assert report.abstract_result.failed

    def test_theorem19_part2_no_solution_exists(self):
        # When the c-chase fails, even hand-crafted targets cannot satisfy
        # the setting — probe with the empty and a trivial full target.
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 6)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        assert c_chase(source, setting).failed
        candidate = ConcreteInstance(
            [
                concrete_fact("T", "a", "1", interval=Interval(0, 6)),
                concrete_fact("T", "a", "2", interval=Interval(4, 9)),
            ]
        )
        assert not is_solution(semantics(source), semantics(candidate), setting)


class TestGeneratedWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_square_commutes_on_random_histories(self, seed):
        from repro.workloads import exchange_setting_join

        workload = random_employment_history(
            people=3, timeline=15, seed=seed
        )
        assert verify_correspondence(
            workload.instance, exchange_setting_join()
        ).holds

    @pytest.mark.parametrize("normalization", ["conjunction", "naive"])
    def test_square_commutes_under_both_normalizations(
        self, setting, source, normalization
    ):
        assert verify_correspondence(
            source, setting, normalization=normalization
        ).holds
