"""Property-based verification of the paper's main theorems.

Corollary 20 (the Figure 10 square), Theorem 19 (solutions), Theorem 21
(query correspondence) and Corollary 22 (certain answers) are checked on
randomized employment-shaped instances — including uncoalesced and
conflicting ones, so both the success and failure paths are exercised.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract_view import semantics
from repro.concrete import c_chase
from repro.correspondence import concrete_is_solution, verify_correspondence
from repro.query import (
    ConjunctiveQuery,
    certain_answers_abstract,
    certain_answers_concrete,
    naive_evaluate_concrete,
    verify_evaluation_correspondence,
)
from repro.workloads import exchange_setting_join

from .strategies import employment_instances

SETTING = exchange_setting_join()
QUERIES = [
    ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)"),
    ConjunctiveQuery.parse("q(n) :- Emp(n, c, s)"),
    ConjunctiveQuery.parse("q(n, c) :- Emp(n, c, s)"),
]


class TestCorollary20:
    @settings(max_examples=30, deadline=None)
    @given(employment_instances())
    def test_square_commutes(self, instance):
        report = verify_correspondence(instance, SETTING)
        assert report.holds

    @settings(max_examples=20, deadline=None)
    @given(employment_instances(max_facts=5))
    def test_square_commutes_under_naive_normalization(self, instance):
        assert verify_correspondence(
            instance, SETTING, normalization="naive"
        ).holds


class TestTheorem19:
    @settings(max_examples=30, deadline=None)
    @given(employment_instances())
    def test_successful_chase_yields_solution(self, instance):
        result = c_chase(instance, SETTING)
        if result.succeeded:
            assert concrete_is_solution(instance, result.target, SETTING)

    @settings(max_examples=30, deadline=None)
    @given(employment_instances())
    def test_failed_chase_has_no_abstract_chase_solution(self, instance):
        from repro.abstract_view import abstract_chase

        result = c_chase(instance, SETTING)
        if result.failed:
            assert abstract_chase(semantics(instance), SETTING).failed


class TestTheorem21AndCorollary22:
    @settings(max_examples=25, deadline=None)
    @given(employment_instances(), st.sampled_from(QUERIES))
    def test_naive_evaluation_correspondence(self, instance, query):
        result = c_chase(instance, SETTING)
        if result.succeeded:
            assert verify_evaluation_correspondence(query, result.target)

    @settings(max_examples=25, deadline=None)
    @given(employment_instances(), st.sampled_from(QUERIES))
    def test_certain_answers_agree_across_views(self, instance, query):
        result = c_chase(instance, SETTING)
        if result.succeeded:
            assert certain_answers_concrete(
                query, instance, SETTING
            ) == certain_answers_abstract(query, semantics(instance), SETTING)

    @settings(max_examples=25, deadline=None)
    @given(employment_instances(), st.sampled_from(QUERIES))
    def test_certain_answers_sound_for_the_solution_itself(
        self, instance, query
    ):
        # certain(q) ⊆ naive answers on the universal solution (they are
        # equal by definition here, so containment is a weak but cheap
        # sanity floor that would catch egregious bugs in either side).
        result = c_chase(instance, SETTING)
        if result.succeeded:
            certain = certain_answers_concrete(query, instance, SETTING)
            on_solution = naive_evaluate_concrete(
                query, result.target
            ).to_temporal()
            assert certain.is_subset_of(on_solution)
