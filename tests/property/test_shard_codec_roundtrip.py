"""Property tests: serialization round trips preserve everything.

Three codecs cross the process boundary of the ``processes`` executor:
the shard-codec binary format (tasks and outcomes), pickle (whatever a
user-supplied pool does to auxiliary state), and the null factory's
``(prefix, counter)`` reconstruction.  Hypothesis checks that each is
lossless on generated data: instance equality, index-backed lookups,
snapshot semantics, shard reports, and null-name transcripts.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract_view import abstract_chase, semantics
from repro.abstract_view.abstract_chase import ShardReport
from repro.chase.incremental import RegionReuseStats
from repro.chase.nulls import NullFactory
from repro.dependencies import DataExchangeSetting
from repro.relational import (
    AnnotatedNull,
    Constant,
    Fact,
    Instance,
    LabeledNull,
    Schema,
)
from repro.serialize import shard_codec
from repro.temporal import Interval

from .strategies import concrete_instances, employment_instances, intervals

JOIN_SETTING = DataExchangeSetting.create(
    Schema.of(E=("Name", "Company"), S=("Name", "Salary")),
    Schema.of(Emp=("Name", "Company", "Salary")),
    st_tgds=[
        "E(n, c) -> EXISTS s . Emp(n, c, s)",
        "E(n, c) & S(n, s) -> Emp(n, c, s)",
    ],
    egds=["Emp(n, c, s) & Emp(n, c, s2) -> s = s2"],
)


@st.composite
def ground_terms(draw):
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return Constant(
            draw(
                st.one_of(
                    st.text(min_size=0, max_size=6),
                    st.integers(min_value=-(2**70), max_value=2**70),
                    st.booleans(),
                    st.none(),
                )
            )
        )
    if kind == 1:
        return LabeledNull(draw(st.sampled_from(("N1", "N2", "M3"))))
    if kind == 2:
        return AnnotatedNull(
            draw(st.sampled_from(("N1", "N2"))),
            draw(intervals(allow_unbounded=True)),
        )
    return Constant(draw(intervals(allow_unbounded=True)))


@st.composite
def relational_instances(draw, max_facts: int = 10):
    count = draw(st.integers(min_value=0, max_value=max_facts))
    instance = Instance()
    for _ in range(count):
        relation = draw(st.sampled_from(("R", "S", "T")))
        arity = draw(st.integers(min_value=1, max_value=3))
        instance.add(
            Fact(relation, tuple(draw(ground_terms()) for _ in range(arity)))
        )
    return instance


class TestInstanceRoundTrips:
    @settings(max_examples=80, deadline=None)
    @given(instance=relational_instances())
    def test_codec_preserves_equality_and_indexes(self, instance):
        decoded = shard_codec.decode_instance(
            shard_codec.encode_instance(instance)
        )
        assert decoded == instance
        assert decoded.nulls() == instance.nulls()
        assert decoded.active_domain() == instance.active_domain()
        for relation in instance.relation_names():
            assert decoded.facts_of(relation) == instance.facts_of(relation)
            for item in instance.facts_of(relation):
                for position, value in enumerate(item.args):
                    assert decoded.lookup(
                        relation, {position: value}
                    ) == instance.lookup(relation, {position: value})

    @settings(max_examples=60, deadline=None)
    @given(instance=relational_instances())
    def test_pickle_preserves_equality_and_indexes(self, instance):
        # Warm the lazy caches so the round trip has to discard them.
        for relation in instance.relation_names():
            instance.lookup(relation, {})
        clone = pickle.loads(pickle.dumps(instance))
        assert clone == instance
        for relation in instance.relation_names():
            for item in instance.facts_of(relation):
                for position, value in enumerate(item.args):
                    assert clone.lookup(
                        relation, {position: value}
                    ) == instance.lookup(relation, {position: value})

    @settings(max_examples=50, deadline=None)
    @given(source=concrete_instances())
    def test_concrete_pickle_preserves_lifted_view(self, source):
        source.lifted()
        clone = pickle.loads(pickle.dumps(source))
        assert clone == source
        assert clone.lifted() == source.lifted()


class TestSnapshotRoundTrips:
    @settings(max_examples=50, deadline=None)
    @given(source=employment_instances(max_facts=6))
    def test_abstract_instance_codec_preserves_snapshots(self, source):
        abstract = semantics(source)
        decoded = shard_codec.decode_abstract_instance(
            shard_codec.encode_abstract_instance(abstract)
        )
        assert decoded == abstract
        assert decoded.same_snapshots_as(abstract)
        assert decoded.regions() == abstract.regions()


class TestNullNameTranscripts:
    @settings(max_examples=40, deadline=None)
    @given(
        prefix=st.sampled_from(("N", "Ns0_", "Ng2s1_")),
        warmup=st.integers(min_value=0, max_value=20),
        issue=st.integers(min_value=1, max_value=10),
    )
    def test_factory_reconstruction_matches_original(
        self, prefix, warmup, issue
    ):
        original = NullFactory(prefix=prefix)
        for _ in range(warmup):
            original.fresh()
        # Both boundary crossings: pickle, and the shard task's
        # (prefix, counter) reconstruction used by _process_worker.
        pickled = pickle.loads(pickle.dumps(original))
        rebuilt = NullFactory(prefix=prefix)
        rebuilt.fast_forward(original.issued)
        produced = [original.fresh().name for _ in range(issue)]
        assert [pickled.fresh().name for _ in range(issue)] == produced
        assert [rebuilt.fresh().name for _ in range(issue)] == produced


class TestShardReportRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(
        shard=st.integers(min_value=0, max_value=63),
        regions=st.integers(min_value=0, max_value=1000),
        seconds=st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        nulls=st.integers(min_value=0, max_value=10**9),
        stats=st.one_of(
            st.none(),
            st.builds(
                RegionReuseStats,
                replayed_matches=st.integers(min_value=0, max_value=10**6),
                live_matches=st.integers(min_value=0, max_value=10**6),
                replayed_firings=st.integers(min_value=0, max_value=10**6),
                live_firings=st.integers(min_value=0, max_value=10**6),
                streams_reused=st.integers(min_value=0, max_value=10**4),
                streams_patched=st.integers(min_value=0, max_value=10**4),
                streams_rebuilt=st.integers(min_value=0, max_value=10**4),
            ),
        ),
    )
    def test_report_survives_outcome_payload(
        self, shard, regions, seconds, nulls, stats
    ):
        report = ShardReport(
            shard=shard,
            regions=regions,
            seconds=seconds,
            nulls_issued=nulls,
            reuse=stats,
            remote=True,
        )
        outcome = shard_codec.ShardOutcome(
            results=(),
            region_reuse={Interval(0, 2): RegionReuseStats(live_matches=1)},
            error=None,
            report=report,
            merged_templates=(),
        )
        decoded = shard_codec.decode_shard_outcome(
            shard_codec.encode_shard_outcome(outcome)
        )
        assert decoded.report == report
        assert vars(decoded.region_reuse[Interval(0, 2)]) == vars(
            RegionReuseStats(live_matches=1)
        )


@pytest.fixture(scope="module")
def shared_pool():
    """One pool for every example — forking one per example would
    dominate the suite's runtime without adding coverage."""
    with ProcessPoolExecutor(max_workers=2) as pool:
        yield pool


class TestProcessesEqualsSerial:
    """The acceptance property: processes ≡ serial, byte for byte."""

    @settings(max_examples=12, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_sharded_processes_byte_identical(self, shared_pool, source):
        abstract = semantics(source)
        serial = abstract_chase(
            abstract, JOIN_SETTING, shards=2, null_factory=NullFactory()
        )
        procs = abstract_chase(
            abstract,
            JOIN_SETTING,
            shards=2,
            executor=shared_pool,
            null_factory=NullFactory(),
        )
        assert procs.failed == serial.failed
        assert procs.failed_region == serial.failed_region
        assert str(procs.failure) == str(serial.failure)
        assert procs.target == serial.target
        assert list(procs.region_results) == list(serial.region_results)
        for region in serial.region_results:
            assert (
                procs.region_results[region].target
                == serial.region_results[region].target
            )
            assert [
                str(s) for s in procs.region_results[region].trace.steps
            ] == [str(s) for s in serial.region_results[region].trace.steps]
