"""Property tests for the incrementally-maintained instance indexes.

The ``(position, value) → facts`` index and the pre-sorted buckets used
by the homomorphism search are built lazily and then updated in place on
every ``add``/``discard``.  The ground truth is a brute-force scan over
the fact set: after any interleaving of mutations and probes, ``lookup``
must equal the scan and ``lookup_ordered`` must equal the scan in
``Fact.sort_key`` order — i.e. the maintained index is always identical
to a freshly rebuilt one.  The concrete instance's lifted view gets the
same treatment.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concrete import ConcreteInstance, concrete_fact
from repro.relational import Constant, Instance, fact
from repro.relational.fact import Fact

from .strategies import intervals

RELATIONS = (("R", 2), ("S", 1), ("T", 3))
DOMAIN = ("a", "b", "c", "d")


@st.composite
def snapshot_facts(draw):
    relation, arity = draw(st.sampled_from(RELATIONS))
    values = [draw(st.sampled_from(DOMAIN)) for _ in range(arity)]
    return fact(relation, *values)


@st.composite
def operation_sequences(draw, max_ops: int = 25):
    """Interleaved add/discard/probe operations over a small universe."""
    count = draw(st.integers(min_value=0, max_value=max_ops))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(("add", "discard", "probe")))
        ops.append((kind, draw(snapshot_facts())))
    return ops


def brute_force_lookup(instance: Instance, relation: str, bindings) -> set:
    return {
        item
        for item in instance.facts_of(relation)
        if all(item.args[pos] == val for pos, val in bindings.items())
    }


def probe_bindings(item: Fact, draw_all: bool) -> dict:
    if draw_all:
        return dict(enumerate(item.args))
    return {0: item.args[0]} if item.args else {}


class TestIncrementalIndexConsistency:
    @given(operation_sequences())
    @settings(max_examples=60)
    def test_lookup_matches_fresh_rebuild_after_interleaving(self, ops):
        instance = Instance()
        shadow: set[Fact] = set()
        for kind, item in ops:
            if kind == "add":
                assert instance.add(item) == (item not in shadow)
                shadow.add(item)
            elif kind == "discard":
                assert instance.discard(item) == (item in shadow)
                shadow.discard(item)
            else:  # probe — this is what builds (and then reuses) the index
                for bindings in (
                    {},
                    {0: item.args[0]},
                    dict(enumerate(item.args)),
                ):
                    expected = brute_force_lookup(
                        instance, item.relation, bindings
                    )
                    assert instance.lookup(item.relation, bindings) == expected
                    ordered = list(
                        instance.lookup_ordered(item.relation, bindings)
                    )
                    assert ordered == sorted(expected, key=Fact.sort_key)
                    assert instance.candidate_count(
                        item.relation, bindings
                    ) >= len(expected)
            assert instance.facts() == frozenset(shadow)

    @given(operation_sequences())
    @settings(max_examples=40)
    def test_maintained_index_equals_fresh_instance(self, ops):
        maintained = Instance()
        # Force the index to exist from the start so every mutation goes
        # through the incremental path.
        maintained.lookup("R", {0: Constant("a")})
        for kind, item in ops:
            if kind == "add":
                maintained.add(item)
            elif kind == "discard":
                maintained.discard(item)
        fresh = Instance(maintained.facts())
        for relation, _arity in RELATIONS:
            for value in DOMAIN:
                bindings = {0: Constant(value)}
                assert maintained.lookup(relation, bindings) == fresh.lookup(
                    relation, bindings
                )
                assert list(maintained.lookup_ordered(relation, {})) == list(
                    fresh.lookup_ordered(relation, {})
                )


@st.composite
def concrete_ops(draw, max_ops: int = 16):
    count = draw(st.integers(min_value=0, max_value=max_ops))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(("add", "discard")))
        relation = draw(st.sampled_from(("E", "S")))
        value = draw(st.sampled_from(DOMAIN))
        stamp = draw(intervals(max_start=10, max_length=5))
        ops.append((kind, concrete_fact(relation, value, interval=stamp)))
    return ops


class TestLiftedViewConsistency:
    @given(concrete_ops())
    @settings(max_examples=60)
    def test_lifted_view_equals_fresh_rebuild(self, ops):
        instance = ConcreteInstance()
        instance.lifted()  # build early: all mutations go incremental
        for kind, item in ops:
            if kind == "add":
                instance.add(item)
            else:
                instance.discard(item)
            rebuilt = ConcreteInstance(instance.facts()).lifted()
            assert instance.lifted() == rebuilt
            for item2 in instance.facts():
                assert instance.resolve_lifted(item2.lifted()) == item2
