"""Indexed query evaluation ≡ scan reference, swept by Hypothesis.

The indexed engine (plan probing, counting-based region sweep, freeze-free
concrete route, QueryLog replay) must be answer-equivalent to the scan
transcription of the paper's procedures — answer sets, interval
annotations and (sorted) tuple order alike.  The sweep drives colliding-
endpoint instances (small integer timelines, so template stamps share
endpoints constantly) and null-heavy chased targets (E facts without a
matching S draw existential nulls), plus the Theorem 21 correspondence on
the new paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.abstract_view import semantics
from repro.concrete import c_chase
from repro.dependencies import DataExchangeSetting
from repro.query import (
    ConjunctiveQuery,
    QueryLog,
    UnionQuery,
    evaluate_snapshot,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
    verify_evaluation_correspondence,
)
from repro.relational import Schema

from .strategies import concrete_instances, employment_instances

JOIN_SETTING = DataExchangeSetting.create(
    Schema.of(E=("Name", "Company"), S=("Name", "Salary")),
    Schema.of(Emp=("Name", "Company", "Salary")),
    st_tgds=[
        "E(n, c) -> EXISTS s . Emp(n, c, s)",
        "E(n, c) & S(n, s) -> Emp(n, c, s)",
    ],
    egds=["Emp(n, c, s) & Emp(n, c, s2) -> s = s2"],
)

# One query per evaluator shape: single atom (normalization-free path),
# a self-join (flat plan + fragmentation), constants (generic fallback),
# a repeated variable within an atom (generic fallback), and a union
# mixing the shapes.
QUERIES = (
    ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)"),
    ConjunctiveQuery.parse("q(n, m) :- Emp(n, c, s) & Emp(m, c, s)"),
    ConjunctiveQuery.parse("q(n) :- Emp(n, 'ibm', s)"),
    ConjunctiveQuery.parse("q(n) :- Emp(n, c, c)"),
    UnionQuery.of(
        "q(n) :- Emp(n, 'ibm', s)",
        "q(n) :- Emp(n, c, s) & Emp(n, c2, s)",
    ),
)

# Direct (unchased) instances exercise the snapshot/abstract evaluators
# over arbitrary colliding-endpoint timelines without chase constraints.
DIRECT_QUERIES = (
    ConjunctiveQuery.parse("q(x) :- R(x)"),
    ConjunctiveQuery.parse("q(x) :- R(x) & S(x)"),
    UnionQuery.of("q(x) :- R(x)", "q(x) :- S(x)"),
)


def _chased(source):
    result = c_chase(source, JOIN_SETTING)
    return None if result.failed else result.target


class TestIndexedEqualsScan:
    @settings(max_examples=40, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_concrete_rows_byte_identical(self, source):
        solution = _chased(source)
        if solution is None:
            return
        for query in QUERIES:
            indexed = naive_evaluate_concrete(query, solution, engine="indexed")
            scan = naive_evaluate_concrete(query, solution, engine="scan")
            # Same rows, same interval annotations, same sorted order.
            assert indexed.rows == scan.rows
            assert list(indexed) == list(scan)

    @settings(max_examples=40, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_abstract_answers_byte_identical(self, source):
        solution = _chased(source)
        if solution is None:
            return
        abstract = semantics(solution)
        for query in QUERIES:
            indexed = naive_evaluate_abstract(query, abstract, engine="indexed")
            scan = naive_evaluate_abstract(query, abstract, engine="scan")
            assert indexed == scan
            # Canonical interval sets piece by piece, and sorted order.
            assert list(indexed) == list(scan)
            for (_, lhs), (_, rhs) in zip(indexed, scan, strict=True):
                assert lhs.intervals == rhs.intervals

    @settings(max_examples=40, deadline=None)
    @given(
        source=concrete_instances(
            relations=(("R", 1), ("S", 1)), max_facts=10, max_start=10,
            max_length=5,
        )
    )
    def test_direct_instances_colliding_endpoints(self, source):
        abstract = semantics(source)
        for query in DIRECT_QUERIES:
            indexed = naive_evaluate_abstract(query, abstract, engine="indexed")
            scan = naive_evaluate_abstract(query, abstract, engine="scan")
            assert indexed == scan
            concrete_indexed = naive_evaluate_concrete(
                query, source, engine="indexed"
            )
            concrete_scan = naive_evaluate_concrete(
                query, source, engine="scan"
            )
            assert concrete_indexed.rows == concrete_scan.rows

    @settings(max_examples=30, deadline=None)
    @given(source=employment_instances(max_facts=6))
    def test_snapshot_engines_agree(self, source):
        solution = _chased(source)
        if solution is None:
            return
        abstract = semantics(solution)
        for region in abstract.regions():
            snapshot = abstract.snapshot(region.start)
            for query in QUERIES:
                assert evaluate_snapshot(
                    query, snapshot, engine="indexed"
                ) == evaluate_snapshot(query, snapshot, engine="scan")

    @settings(max_examples=25, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_theorem_21_on_new_paths(self, source):
        solution = _chased(source)
        if solution is None:
            return
        for query in QUERIES:
            assert verify_evaluation_correspondence(
                query, solution, engine="indexed"
            )

    @settings(max_examples=25, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_query_log_replay_is_invisible(self, source):
        solution = _chased(source)
        if solution is None:
            return
        log = QueryLog()
        for query in QUERIES:
            fresh = naive_evaluate_concrete(query, solution, engine="indexed")
            first = naive_evaluate_concrete(
                query, solution, engine="indexed", log=log
            )
            replayed = naive_evaluate_concrete(
                query, solution, engine="indexed", log=log
            )
            assert fresh.rows == first.rows == replayed.rows
        assert log.hits > 0


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        query = ConjunctiveQuery.parse("q(x) :- R(x)")
        from repro.relational import Instance

        with pytest.raises(ValueError, match="unknown query engine"):
            evaluate_snapshot(query, Instance(), engine="turbo")

    def test_scan_log_combination_rejected(self):
        from repro.concrete import ConcreteInstance

        query = ConjunctiveQuery.parse("q(x) :- R(x)")
        with pytest.raises(ValueError, match="does not support a QueryLog"):
            naive_evaluate_concrete(
                query, ConcreteInstance(), engine="scan", log=QueryLog()
            )
