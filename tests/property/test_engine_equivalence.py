"""Delta-driven chase ≡ full-rescan chase, on generated scenarios.

The semi-naive engine mode ("delta") enumerates each egd round only
against the facts the previous substitution pass actually added; the
reference mode ("rescan") re-enumerates the whole instance every round.
The two must agree on everything observable: success/failure, the final
instance, the recorded failure, and (because round batching is
unchanged) the set of egd merges.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.chase import chase_snapshot
from repro.concrete import c_chase
from repro.dependencies import DataExchangeSetting
from repro.relational import Schema

from .strategies import employment_instances

JOIN_SETTING = DataExchangeSetting.create(
    Schema.of(E=("Name", "Company"), S=("Name", "Salary")),
    Schema.of(Emp=("Name", "Company", "Salary")),
    st_tgds=[
        "E(n, c) -> EXISTS s . Emp(n, c, s)",
        "E(n, c) & S(n, s) -> Emp(n, c, s)",
    ],
    egds=["Emp(n, c, s) & Emp(n, c2, s2) -> s = s2"],
)


def _trace_summary(trace):
    return (
        [(s.dependency, str(s.replaced), str(s.replacement)) for s in trace.egd_steps],
        len(trace.tgd_steps),
    )


class TestCChaseEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(source=employment_instances())
    def test_delta_equals_rescan(self, source):
        delta = c_chase(source, JOIN_SETTING, engine="delta")
        rescan = c_chase(source, JOIN_SETTING, engine="rescan")
        assert delta.failed == rescan.failed
        assert delta.target == rescan.target
        assert delta.normalized_source == rescan.normalized_source
        assert delta.pre_egd_target == rescan.pre_egd_target
        if delta.failed:
            assert delta.failure is not None and rescan.failure is not None
            assert (
                delta.failure.dependency,
                str(delta.failure.left),
                str(delta.failure.right),
            ) == (
                rescan.failure.dependency,
                str(rescan.failure.left),
                str(rescan.failure.right),
            )
        assert _trace_summary(delta.trace) == _trace_summary(rescan.trace)

    @settings(max_examples=60, deadline=None)
    @given(source=employment_instances())
    def test_snapshot_chase_delta_equals_rescan(self, source):
        for point in sorted({0, *source.breakpoints()})[:4]:
            snapshot = source.snapshot(point)
            delta = chase_snapshot(snapshot, JOIN_SETTING, engine="delta")
            rescan = chase_snapshot(snapshot, JOIN_SETTING, engine="rescan")
            assert delta.failed == rescan.failed
            assert delta.target == rescan.target
            assert _trace_summary(delta.trace) == _trace_summary(rescan.trace)
