"""Incremental cross-region chase ≡ from-scratch chase, byte-for-byte.

The incremental mode replays the previous region's recorded firing
sequence against the patched snapshot; the hard requirement is that
everything observable is identical to chasing every region from scratch
— the abstract solution, the per-region targets, the full traces (null
*names* included, since replay re-mints fresh nulls under the same
counter), failures and their regions.  Hypothesis drives the comparison
over generated employment histories, a failure-heavy key-clash mapping,
and the sharded scheduler (each shard is its own incremental chain).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.abstract_view import abstract_chase, semantics
from repro.chase.nulls import NullFactory
from repro.dependencies import DataExchangeSetting
from repro.relational import Schema

from .strategies import employment_instances

JOIN_SETTING = DataExchangeSetting.create(
    Schema.of(E=("Name", "Company"), S=("Name", "Salary")),
    Schema.of(Emp=("Name", "Company", "Salary")),
    st_tgds=[
        "E(n, c) -> EXISTS s . Emp(n, c, s)",
        "E(n, c) & S(n, s) -> Emp(n, c, s)",
    ],
    egds=["Emp(n, c, s) & Emp(n, c, s2) -> s = s2"],
)

# Clash-prone: equating salaries across companies fails as soon as one
# person draws two distinct salaries anywhere on the timeline.
CLASH_SETTING = DataExchangeSetting.create(
    Schema.of(E=("Name", "Company"), S=("Name", "Salary")),
    Schema.of(Emp=("Name", "Company", "Salary")),
    st_tgds=[
        "E(n, c) -> EXISTS s . Emp(n, c, s)",
        "E(n, c) & S(n, s) -> Emp(n, c, s)",
    ],
    egds=["Emp(n, c, s) & Emp(n2, c, s2) -> s = s2"],
)


def _trace_lines(result):
    return {
        region: [repr(step) for step in regional.trace.steps]
        for region, regional in result.region_results.items()
    }


def _assert_byte_identical(incremental, full):
    assert incremental.failed == full.failed
    assert incremental.failed_region == full.failed_region
    assert str(incremental.failure) == str(full.failure)
    assert sorted(map(str, incremental.target.templates)) == sorted(
        map(str, full.target.templates)
    )
    assert list(incremental.region_results) == list(full.region_results)
    for region in full.region_results:
        lhs = incremental.region_results[region]
        rhs = full.region_results[region]
        assert sorted(map(str, lhs.target.facts())) == sorted(
            map(str, rhs.target.facts())
        ), region
    assert _trace_lines(incremental) == _trace_lines(full)


class TestIncrementalEqualsFull:
    @settings(max_examples=60, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_join_setting(self, source):
        abstract = semantics(source)
        incremental = abstract_chase(
            abstract, JOIN_SETTING, incremental=True,
            null_factory=NullFactory(),
        )
        full = abstract_chase(
            abstract, JOIN_SETTING, incremental=False,
            null_factory=NullFactory(),
        )
        _assert_byte_identical(incremental, full)

    @settings(max_examples=60, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_failure_heavy_setting(self, source):
        abstract = semantics(source)
        incremental = abstract_chase(
            abstract, CLASH_SETTING, incremental=True,
            null_factory=NullFactory(),
        )
        full = abstract_chase(
            abstract, CLASH_SETTING, incremental=False,
            null_factory=NullFactory(),
        )
        _assert_byte_identical(incremental, full)

    @settings(max_examples=30, deadline=None)
    @given(source=employment_instances(max_facts=8))
    def test_sharded_chains(self, source):
        abstract = semantics(source)
        incremental = abstract_chase(
            abstract, JOIN_SETTING, incremental=True, shards=3,
            null_factory=NullFactory(),
        )
        full = abstract_chase(
            abstract, JOIN_SETTING, incremental=False, shards=3,
            null_factory=NullFactory(),
        )
        _assert_byte_identical(incremental, full)
