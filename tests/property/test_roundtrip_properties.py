"""Property-based round-trip tests: serialization and coalescing."""

from hypothesis import given, settings

from repro.abstract_view import semantics
from repro.concrete import c_chase
from repro.serialize import (
    concrete_instance_from_json,
    concrete_instance_to_json,
    instance_from_csv_dict,
    instance_to_csv_dict,
)
from repro.workloads import exchange_setting_join

from .strategies import concrete_instances, employment_instances


class TestSerializationRoundtrips:
    @settings(max_examples=50, deadline=None)
    @given(concrete_instances())
    def test_json_roundtrip(self, instance):
        payload = concrete_instance_to_json(instance)
        assert concrete_instance_from_json(payload) == instance

    @settings(max_examples=50, deadline=None)
    @given(concrete_instances())
    def test_csv_roundtrip(self, instance):
        tables = instance_to_csv_dict(instance)
        assert instance_from_csv_dict(tables) == instance

    @settings(max_examples=20, deadline=None)
    @given(employment_instances())
    def test_solution_with_nulls_roundtrips(self, instance):
        result = c_chase(instance, exchange_setting_join())
        if not result.succeeded:
            return
        solution = result.target
        assert concrete_instance_from_json(
            concrete_instance_to_json(solution)
        ) == solution
        assert instance_from_csv_dict(instance_to_csv_dict(solution)) == solution


class TestCoalescingProperties:
    @settings(max_examples=50, deadline=None)
    @given(concrete_instances())
    def test_coalesce_idempotent(self, instance):
        once = instance.coalesce()
        assert once.coalesce() == once

    @settings(max_examples=50, deadline=None)
    @given(concrete_instances())
    def test_coalesce_preserves_semantics(self, instance):
        assert semantics(instance.coalesce()).same_snapshots_as(
            semantics(instance)
        )

    @settings(max_examples=50, deadline=None)
    @given(concrete_instances())
    def test_coalesce_output_is_coalesced(self, instance):
        assert instance.coalesce().is_coalesced()

    @settings(max_examples=50, deadline=None)
    @given(concrete_instances())
    def test_coalesce_never_grows(self, instance):
        assert len(instance.coalesce()) <= len(instance)

    @settings(max_examples=20, deadline=None)
    @given(employment_instances())
    def test_chase_of_coalesced_source_equivalent(self, instance):
        # Coalescing the source never changes the exchange semantics.
        from repro.abstract_view import homomorphically_equivalent

        setting = exchange_setting_join()
        raw = c_chase(instance, setting)
        merged = c_chase(instance.coalesce(), setting)
        assert raw.failed == merged.failed
        if raw.succeeded:
            assert homomorphically_equivalent(
                semantics(raw.target), semantics(merged.target)
            )
