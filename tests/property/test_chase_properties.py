"""Property-based tests for the chase machinery itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase import chase_snapshot, core_of, is_core, snapshot_satisfies
from repro.chase.union_find import TermUnionFind
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.workloads import exchange_setting_join


SETTING = exchange_setting_join()


@st.composite
def snapshots(draw):
    """Random E/S snapshots for the employment mapping."""
    count = draw(st.integers(min_value=0, max_value=6))
    names = ("ada", "bob", "cyd")
    companies = ("ibm", "hp")
    salaries = ("10k", "20k")
    instance = Instance()
    for _ in range(count):
        if draw(st.booleans()):
            instance.add(
                fact(
                    "E",
                    draw(st.sampled_from(names)),
                    draw(st.sampled_from(companies)),
                )
            )
        else:
            instance.add(
                fact(
                    "S",
                    draw(st.sampled_from(names)),
                    draw(st.sampled_from(salaries)),
                )
            )
    return instance


class TestSnapshotChaseProperties:
    @settings(max_examples=50, deadline=None)
    @given(snapshots())
    def test_successful_chase_satisfies_dependencies(self, snapshot):
        result = chase_snapshot(snapshot, SETTING)
        if result.succeeded:
            assert snapshot_satisfies(snapshot, result.target, SETTING)

    @settings(max_examples=50, deadline=None)
    @given(snapshots())
    def test_chase_deterministic(self, snapshot):
        first = chase_snapshot(snapshot, SETTING)
        second = chase_snapshot(snapshot, SETTING)
        assert first.failed == second.failed
        if first.succeeded:
            assert first.target == second.target

    @settings(max_examples=50, deadline=None)
    @given(snapshots())
    def test_join_setting_never_fails_on_single_salary_values(self, snapshot):
        # Failure needs two distinct salaries for one (name, company) —
        # possible here, so just assert the failure witness is honest.
        result = chase_snapshot(snapshot, SETTING)
        if result.failed:
            assert result.failure is not None
            assert isinstance(result.failure.left, Constant)
            assert isinstance(result.failure.right, Constant)
            assert result.failure.left != result.failure.right

    @settings(max_examples=40, deadline=None)
    @given(snapshots())
    def test_oblivious_result_maps_onto_standard(self, snapshot):
        from repro.relational.homomorphism import has_instance_homomorphism

        standard = chase_snapshot(snapshot, SETTING, variant="standard")
        oblivious = chase_snapshot(snapshot, SETTING, variant="oblivious")
        if standard.succeeded and oblivious.succeeded:
            # Both are universal solutions: homomorphic both ways.
            assert has_instance_homomorphism(oblivious.target, standard.target)
            assert has_instance_homomorphism(standard.target, oblivious.target)


class TestCoreProperties:
    @settings(max_examples=40, deadline=None)
    @given(snapshots())
    def test_core_is_core(self, snapshot):
        result = chase_snapshot(snapshot, SETTING, variant="oblivious")
        if result.succeeded:
            assert is_core(core_of(result.target))

    @settings(max_examples=40, deadline=None)
    @given(snapshots())
    def test_core_never_larger(self, snapshot):
        result = chase_snapshot(snapshot, SETTING, variant="oblivious")
        if result.succeeded:
            assert len(core_of(result.target)) <= len(result.target)

    @settings(max_examples=40, deadline=None)
    @given(snapshots())
    def test_core_homomorphically_equivalent(self, snapshot):
        from repro.relational.homomorphism import has_instance_homomorphism

        result = chase_snapshot(snapshot, SETTING, variant="oblivious")
        if result.succeeded:
            core = core_of(result.target)
            assert has_instance_homomorphism(core, result.target)
            assert has_instance_homomorphism(result.target, core)


class TestUnionFindProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)),
            max_size=20,
        )
    )
    def test_merges_form_equivalence(self, pairs):
        uf = TermUnionFind()
        nulls = [LabeledNull(f"n{i}") for i in range(9)]
        for a, b in pairs:
            uf.union(nulls[a], nulls[b])
        # Reflexive, symmetric, transitive via representative equality.
        for a, b in pairs:
            assert uf.same_class(nulls[a], nulls[b])
        for i in range(9):
            assert uf.same_class(nulls[i], nulls[i])

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=10),
        st.integers(0, 5),
    )
    def test_constant_always_wins(self, members, anchor):
        uf = TermUnionFind()
        nulls = [LabeledNull(f"n{i}") for i in range(6)]
        constant = Constant("c")
        uf.union(nulls[anchor], constant)
        for member in members:
            uf.union(nulls[member], nulls[anchor])
        assert uf.find(nulls[anchor]) == constant
        for member in members:
            assert uf.find(nulls[member]) == constant
