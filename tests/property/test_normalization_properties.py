"""Property-based tests for normalization (Theorems 11, 13, 15)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abstract_view import semantics
from repro.concrete import (
    has_empty_intersection_property,
    is_normalized,
    naive_normalize,
    normalize,
)
from repro.relational import TemporalConjunction, parse_conjunction

from .strategies import concrete_instances

PAIR = TemporalConjunction.from_conjunction(parse_conjunction("R(x) & S(y)"))
SELF_JOIN = TemporalConjunction.from_conjunction(parse_conjunction("R(x) & R(y)"))
JOINED = TemporalConjunction.from_conjunction(parse_conjunction("R(x) & S(x)"))
CONJUNCTION_SETS = [[PAIR], [SELF_JOIN], [JOINED], [PAIR, SELF_JOIN]]


class TestTheorem15:
    """Algorithm 1's output is normalized, for arbitrary inputs."""

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_output_is_normalized(self, instance, conjunctions):
        assert is_normalized(normalize(instance, conjunctions), conjunctions)

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_idempotent(self, instance, conjunctions):
        once = normalize(instance, conjunctions)
        assert normalize(once, conjunctions) == once

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_semantics_preserved(self, instance, conjunctions):
        normalized = normalize(instance, conjunctions)
        assert semantics(normalized).same_snapshots_as(semantics(instance))

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_never_larger_than_naive(self, instance, conjunctions):
        # Algorithm 1 fragments only matched components, at a subset of
        # the endpoints the naive algorithm uses — *under the paper's
        # standing assumption that the source is coalesced*.  On an
        # uncoalesced input the count comparison is simply false (for
        # the reference implementation too): fragments of duplicated
        # value-equivalent facts merge under set semantics, so the
        # naive output can shrink below the input while Algorithm 1,
        # finding no matches, leaves the duplicates untouched.
        instance = instance.coalesce()
        assert len(normalize(instance, conjunctions)) <= len(
            naive_normalize(instance)
        )


class TestTheorem11:
    """Normalization property ⇔ empty intersection property."""

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_checker_equivalence(self, instance, conjunctions):
        # is_normalized is *defined* via the empty intersection property;
        # this asserts the two public entry points never diverge.
        assert is_normalized(instance, conjunctions) == (
            has_empty_intersection_property(instance, conjunctions)
        )

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances())
    def test_trivially_normalized_wrt_nothing(self, instance):
        assert is_normalized(instance, [])


class TestNaiveNormalization:
    @settings(max_examples=40, deadline=None)
    @given(concrete_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_normalized_wrt_any_conjunctions(self, instance, conjunctions):
        assert is_normalized(naive_normalize(instance), conjunctions)

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances())
    def test_idempotent(self, instance):
        once = naive_normalize(instance)
        assert naive_normalize(once) == once

    @settings(max_examples=40, deadline=None)
    @given(concrete_instances())
    def test_semantics_preserved(self, instance):
        assert semantics(naive_normalize(instance)).same_snapshots_as(
            semantics(instance)
        )


class TestTheorem13Bound:
    """Output size stays within the O(n²) worst-case bound."""

    @settings(max_examples=30, deadline=None)
    @given(concrete_instances(max_facts=6), st.sampled_from(CONJUNCTION_SETS))
    def test_quadratic_bound(self, instance, conjunctions):
        n = len(instance)
        output = normalize(instance, conjunctions)
        # Each fact fragments into at most 2n - 1 pieces (Theorem 13).
        assert len(output) <= max(n, n * (2 * n - 1))

    @settings(max_examples=30, deadline=None)
    @given(concrete_instances(max_facts=6))
    def test_naive_bound(self, instance):
        n = len(instance)
        assert len(naive_normalize(instance)) <= max(n, n * (2 * n - 1))
