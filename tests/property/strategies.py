"""Hypothesis strategies for the library's value types."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.concrete import ConcreteInstance, concrete_fact
from repro.temporal import INFINITY, Interval


@st.composite
def intervals(draw, max_start: int = 30, max_length: int = 12, allow_unbounded: bool = True):
    """Random half-open intervals with small integer endpoints."""
    start = draw(st.integers(min_value=0, max_value=max_start))
    if allow_unbounded and draw(st.booleans()) and draw(st.booleans()):
        return Interval(start, INFINITY)
    length = draw(st.integers(min_value=1, max_value=max_length))
    return Interval(start, start + length)


@st.composite
def interval_lists(draw, max_size: int = 8, **kwargs):
    return draw(st.lists(intervals(**kwargs), min_size=0, max_size=max_size))


@st.composite
def concrete_instances(
    draw,
    relations: tuple[tuple[str, int], ...] = (("R", 1), ("S", 1)),
    max_facts: int = 8,
    domain: tuple[str, ...] = ("a", "b", "c"),
    **interval_kwargs,
):
    """Random concrete instances over small unary/binary relations."""
    count = draw(st.integers(min_value=0, max_value=max_facts))
    instance = ConcreteInstance()
    for _ in range(count):
        relation, arity = draw(st.sampled_from(relations))
        values = [draw(st.sampled_from(domain)) for _ in range(arity)]
        stamp = draw(intervals(**interval_kwargs))
        instance.add(concrete_fact(relation, *values, interval=stamp))
    return instance


@st.composite
def employment_instances(draw, max_facts: int = 6):
    """Random E+/S+ instances for the join mapping (possibly uncoalesced)."""
    count = draw(st.integers(min_value=0, max_value=max_facts))
    names = ("ada", "bob")
    companies = ("ibm", "hp")
    salaries = ("10k", "20k")
    instance = ConcreteInstance()
    for _ in range(count):
        stamp = draw(intervals(max_start=12, max_length=6))
        if draw(st.booleans()):
            instance.add(
                concrete_fact(
                    "E",
                    draw(st.sampled_from(names)),
                    draw(st.sampled_from(companies)),
                    interval=stamp,
                )
            )
        else:
            instance.add(
                concrete_fact(
                    "S",
                    draw(st.sampled_from(names)),
                    draw(st.sampled_from(salaries)),
                    interval=stamp,
                )
            )
    return instance
