"""Property tests for the event log's order-independence guarantees.

The whole ingestion design rests on compilation being a pure function
of the resolved event *set*; these tests let Hypothesis attack that
from three angles:

* any permutation of a stream, in any batching, compiles to a
  byte-identical snapshot (the tentpole invariant);
* the deltas a follow cursor hands out, chased incrementally, reach a
  target byte-identical to a cold chase of the final snapshot — the
  live view really is a materialized view of the log;
* ``delta_between(t0, t1)`` is exactly the strict delta taking
  ``snapshot_at(t0)`` to ``snapshot_at(t1)``.

The streams come from the seeded org generator, so every draw contains
the full menu of difficulty: corrections, multi-source merge,
same-point add/remove pairs, and (after Hypothesis re-batches them)
genuinely late arrivals that transit the pending set.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.incremental import chase_source_delta
from repro.concrete import ConcreteInstance, c_chase
from repro.events import EventLog
from repro.serialize import concrete_instance_to_json
from repro.workloads import (
    exchange_setting_org,
    org_event_mapping,
    org_event_stream,
)

MAPPING = org_event_mapping()
SETTING = exchange_setting_org()


def canonical(instance) -> str:
    return json.dumps(concrete_instance_to_json(instance), sort_keys=True)


@st.composite
def streams(draw, max_people: int = 10):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    people = draw(st.integers(min_value=2, max_value=max_people))
    return org_event_stream(people=people, timeline=32, seed=seed)


@st.composite
def batched_permutations(draw, events):
    """A permutation of *events* cut into 1..4 ingestion batches."""
    shuffled = draw(st.permutations(events))
    if len(shuffled) < 2:
        return [shuffled]
    cut_count = draw(st.integers(min_value=0, max_value=3))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=len(shuffled) - 1),
                min_size=cut_count,
                max_size=cut_count,
            )
        )
    )
    bounds = [0, *cuts, len(shuffled)]
    return [shuffled[lo:hi] for lo, hi in zip(bounds, bounds[1:])]


class TestPermutationInvariance:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_any_permutation_any_batching_same_snapshot(self, data):
        events = data.draw(streams())
        reference = EventLog(MAPPING)
        reference.ingest(events)
        expected = canonical(reference.snapshot_at(None))

        log = EventLog(MAPPING)
        for batch in data.draw(batched_permutations(events)):
            if batch:
                log.ingest(batch)
        assert canonical(log.snapshot_at(None)) == expected
        assert log.pending_events() == reference.pending_events()

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_interior_snapshots_agree_too(self, data):
        events = data.draw(streams(max_people=6))
        when = data.draw(st.integers(min_value=0, max_value=32))
        reference = EventLog(MAPPING)
        reference.ingest(events)
        log = EventLog(MAPPING)
        log.ingest(data.draw(st.permutations(events)))
        assert canonical(log.snapshot_at(when)) == canonical(
            reference.snapshot_at(when)
        )


class TestFollowEqualsColdChase:
    @settings(max_examples=8, deadline=None)
    @given(st.data())
    def test_chased_follow_deltas_reach_cold_target(self, data):
        events = data.draw(streams(max_people=5))
        log = EventLog(MAPPING)
        cursor = log.follow()
        source = ConcreteInstance()
        state = None
        result = None
        for batch in data.draw(batched_permutations(events)):
            if not batch:
                continue
            log.ingest(batch)
            source, result = chase_source_delta(
                source, cursor.advance(), SETTING, state=state
            )
            state = result.replay_state
        cold = c_chase(log.snapshot_at(None), SETTING)
        assert canonical(result.target) == canonical(cold.target)


class TestDeltaBetween:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_delta_is_the_strict_diff(self, data):
        events = data.draw(streams(max_people=6))
        log = EventLog(MAPPING)
        log.ingest(events)
        t0 = data.draw(st.integers(min_value=0, max_value=32))
        t1 = data.draw(st.one_of(st.none(), st.integers(min_value=t0, max_value=32)))
        delta = log.delta_between(t0, t1)
        assert delta.applied_to(log.snapshot_at(t0)) == log.snapshot_at(t1)
