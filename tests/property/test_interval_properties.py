"""Property-based tests for the temporal substrate.

The ground truth is the point-set reading of intervals: every operation
is compared against explicit point sets over a finite probe window (the
window is chosen past every finite endpoint, so unbounded tails are
represented faithfully by their prefix).
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.temporal import Interval, IntervalSet
from repro.temporal.coalesce import coalesce_intervals

from .strategies import interval_lists, intervals

PROBE = 60  # beyond any finite endpoint the strategies can produce


def points_of(item: Interval) -> set[int]:
    return set(item.points(limit=PROBE))


def points_of_set(items: IntervalSet) -> set[int]:
    return set(items.points(limit=PROBE))


class TestIntervalPointSemantics:
    @given(intervals(), intervals())
    def test_overlap_agrees_with_point_sets(self, a, b):
        assert a.overlaps(b) == bool(points_of(a) & points_of(b))

    @given(intervals(), intervals())
    def test_intersect_agrees_with_point_sets(self, a, b):
        common = a.intersect(b)
        expected = points_of(a) & points_of(b)
        assert (set() if common is None else points_of(common)) == expected

    @given(intervals(), intervals())
    def test_difference_agrees_with_point_sets(self, a, b):
        got = set()
        for piece in a.difference(b):
            got |= points_of(piece)
        assert got == points_of(a) - points_of(b)

    @given(intervals(), st.lists(st.integers(0, 40), max_size=5))
    def test_split_partitions_points(self, item, cuts):
        pieces = item.split_at(cuts)
        union = set()
        for piece in pieces:
            piece_points = points_of(piece)
            assert not (union & piece_points)  # pairwise disjoint
            union |= piece_points
        assert union == points_of(item)

    @given(intervals(), st.lists(st.integers(0, 40), max_size=5))
    def test_split_pieces_are_contiguous(self, item, cuts):
        pieces = item.split_at(cuts)
        for left, right in zip(pieces, pieces[1:], strict=False):
            assert left.end == right.start

    @given(intervals(), intervals())
    def test_adjacent_iff_disjoint_with_interval_union(self, a, b):
        if a.adjacent(b):
            assert not a.overlaps(b)
            assert points_of(a.union(b)) == points_of(a) | points_of(b)


class TestIntervalSetAlgebra:
    @given(interval_lists(), interval_lists())
    def test_union(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert points_of_set(a.union(b)) == points_of_set(a) | points_of_set(b)

    @given(interval_lists(), interval_lists())
    def test_intersection(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert points_of_set(a.intersect(b)) == points_of_set(a) & points_of_set(b)

    @given(interval_lists(), interval_lists())
    def test_difference(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert points_of_set(a.difference(b)) == points_of_set(a) - points_of_set(b)

    @given(interval_lists())
    def test_complement_partitions_timeline(self, xs):
        a = IntervalSet(xs)
        comp = a.complement()
        assert not (points_of_set(a) & points_of_set(comp))
        assert points_of_set(a) | points_of_set(comp) == set(range(PROBE))

    @given(interval_lists())
    def test_canonical_form_is_coalesced(self, xs):
        canonical = IntervalSet(xs).intervals
        for left, right in zip(canonical, canonical[1:], strict=False):
            assert not left.overlaps(right)
            assert not left.adjacent(right)
            assert left.start < right.start

    @given(interval_lists(), interval_lists())
    def test_equality_is_extensional(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert (a == b) == (points_of_set(a) == points_of_set(b)) or (
            a.is_unbounded != b.is_unbounded
        )

    @given(interval_lists())
    def test_covers_reflexive(self, xs):
        a = IntervalSet(xs)
        assert a.covers(a)


class TestCoalescing:
    @given(interval_lists())
    def test_idempotent(self, xs):
        once = coalesce_intervals(xs)
        assert coalesce_intervals(once) == once

    @given(interval_lists())
    def test_point_preserving(self, xs):
        merged = IntervalSet(coalesce_intervals(xs))
        assert points_of_set(merged) == points_of_set(IntervalSet(xs))

    @given(interval_lists())
    def test_minimal_piece_count(self, xs):
        # No smaller family of intervals can denote the same point set:
        # the canonical pieces are separated by true gaps.
        pieces = coalesce_intervals(xs)
        for left, right in zip(pieces, pieces[1:], strict=False):
            assert left.end < right.start
