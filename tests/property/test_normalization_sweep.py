"""Property suite for the sweep normalization engine.

Three equivalences, over adversarial interval structure (a small
endpoint grid forces duplicated endpoints; width-1 and horizon-touching
intervals, bounded and unbounded, are all generated):

* **sweep ≡ pairwise** — the endpoint-sweep engine produces the same
  fragments, in the same instance order, with the same report counts as
  the historical per-pair reference enumeration;
* **primitives ≡ brute force** — the overlap/bipartite cluster sweeps
  agree with quadratic pairwise enumeration on clusters and pair counts;
* **incremental ≡ full** — replaying a recorded
  :class:`~repro.concrete.normalization.NormalizationLog` on a churned
  instance is byte-identical to normalizing from scratch, report counts
  included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concrete import (
    ConcreteInstance,
    c_chase,
    concrete_fact,
    normalize_with_report,
)
from repro.relational import TemporalConjunction, parse_conjunction
from repro.temporal import (
    INFINITY,
    Interval,
    sweep_bipartite_clusters,
    sweep_overlap_clusters,
)
from repro.workloads import employment_setting


def tc(text: str) -> TemporalConjunction:
    return TemporalConjunction.from_conjunction(parse_conjunction(text))


PAIR = tc("R(x) & S(y)")
SELF_JOIN = tc("R(x) & R(y)")
JOINED = tc("R(x) & S(x)")
SINGLE = tc("R(x)")
TWISTED = tc("R(x, y) & R(y, x)")
CONJUNCTION_SETS = [
    [PAIR],
    [SELF_JOIN],
    [JOINED],
    [TWISTED],
    [PAIR, SELF_JOIN],
    [SINGLE, PAIR],
]

# The horizon of the endpoint grid: drawing every endpoint from
# 0..GRID guarantees duplicated endpoints, horizon-touching stamps
# (ending exactly at GRID) and width-1 intervals at high probability.
GRID = 8


@st.composite
def grid_intervals(draw):
    start = draw(st.integers(min_value=0, max_value=GRID - 1))
    if draw(st.booleans()) and draw(st.booleans()):
        return Interval(start, INFINITY)
    end = draw(st.integers(min_value=start + 1, max_value=GRID))
    return Interval(start, end)


@st.composite
def dense_instances(draw, max_facts: int = 10):
    """Instances whose stamps collide on a tiny endpoint grid."""
    count = draw(st.integers(min_value=0, max_value=max_facts))
    instance = ConcreteInstance()
    for _ in range(count):
        relation, arity = draw(
            st.sampled_from((("R", 1), ("S", 1), ("R", 2)))
        )
        values = [draw(st.sampled_from(("a", "b"))) for _ in range(arity)]
        instance.add(
            concrete_fact(relation, *values, interval=draw(grid_intervals()))
        )
    return instance


class TestSweepEqualsPairwise:
    @settings(max_examples=120, deadline=None)
    @given(dense_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_fragments_counts_and_order(self, instance, conjunctions):
        swept, sweep_report = normalize_with_report(
            instance, conjunctions, engine="sweep"
        )
        paired, pair_report = normalize_with_report(
            instance, conjunctions, engine="pairwise"
        )
        assert swept.facts() == paired.facts()
        # Instance iteration is the deterministic fact order consumers
        # see; the engines must agree on it, not just on the set.
        assert tuple(swept) == tuple(paired)
        assert sweep_report.matched_pairs == pair_report.matched_pairs
        assert sweep_report.components == pair_report.components
        assert sweep_report.facts_fragmented == pair_report.facts_fragmented
        assert sweep_report.fragments_created == pair_report.fragments_created
        assert sweep_report.output_size == pair_report.output_size

    @settings(max_examples=60, deadline=None)
    @given(dense_instances(), st.sampled_from(CONJUNCTION_SETS))
    def test_overlap_sets_never_exceed_pairs(self, instance, conjunctions):
        # Every overlap set witnesses at least one match, so the relaxed
        # count is bounded by the historical one.
        _, report = normalize_with_report(instance, conjunctions)
        assert report.matched_sets <= report.matched_pairs


def _brute_overlap(intervals):
    n = len(intervals)
    pairs = sum(
        1
        for i in range(n)
        for j in range(i + 1, n)
        if intervals[i].overlaps(intervals[j])
    )
    parent = list(range(n))

    def find(node):
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for i in range(n):
        for j in range(i + 1, n):
            if intervals[i].overlaps(intervals[j]):
                parent[find(i)] = find(j)
    components: dict[int, set[int]] = {}
    for i in range(n):
        components.setdefault(find(i), set()).add(i)
    return frozenset(frozenset(c) for c in components.values()), pairs


class TestPrimitivesAgainstBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(grid_intervals(), max_size=10))
    def test_overlap_clusters(self, intervals):
        clusters, pairs = sweep_overlap_clusters(intervals)
        expected_components, expected_pairs = _brute_overlap(intervals)
        assert pairs == expected_pairs
        assert frozenset(frozenset(c) for c in clusters) == expected_components
        # Every index appears in exactly one cluster.
        flat = [i for cluster in clusters for i in cluster]
        assert sorted(flat) == list(range(len(intervals)))

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(grid_intervals(), max_size=7),
        st.lists(grid_intervals(), max_size=7),
    )
    def test_bipartite_clusters(self, left, right):
        clusters, pairs = sweep_bipartite_clusters(left, right)
        expected_pairs = sum(
            1 for a in left for b in right if a.overlaps(b)
        )
        assert pairs == expected_pairs
        # Brute-force the bipartite components (edges cross sides only).
        total = len(left) + len(right)
        parent = list(range(total))

        def find(node):
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for i, a in enumerate(left):
            for j, b in enumerate(right):
                if a.overlaps(b):
                    parent[find(i)] = find(len(left) + j)
        components: dict[int, set[int]] = {}
        for node in range(total):
            components.setdefault(find(node), set()).add(node)
        expected = frozenset(
            frozenset(c) for c in components.values() if len(c) > 1
        )
        got = frozenset(
            frozenset(list(ls) + [len(left) + r for r in rs])
            for ls, rs in clusters
        )
        assert got == expected


@st.composite
def churned_pair(draw):
    """A base instance and a churned variant sharing most facts."""
    base = draw(dense_instances(max_facts=10))
    churned = ConcreteInstance(base.facts())
    for item in list(churned.facts()):
        action = draw(st.integers(min_value=0, max_value=3))
        if action == 0:
            churned.discard(item)
        elif action == 1:
            churned.add(
                concrete_fact(
                    item.relation,
                    *[v.value for v in item.constants()],
                    interval=draw(grid_intervals()),
                )
            )
    return base, churned


class TestIncrementalEqualsFull:
    @settings(max_examples=80, deadline=None)
    @given(churned_pair(), st.sampled_from(CONJUNCTION_SETS))
    def test_replay_is_byte_identical(self, pair, conjunctions):
        base, churned = pair
        _, recorded = normalize_with_report(base, conjunctions, record=True)
        replayed, replay_report = normalize_with_report(
            churned, conjunctions, previous=recorded.log
        )
        fresh, fresh_report = normalize_with_report(churned, conjunctions)
        assert replayed.facts() == fresh.facts()
        assert tuple(replayed) == tuple(fresh)
        for field_name in (
            "matched_sets",
            "matched_pairs",
            "components",
            "facts_fragmented",
            "fragments_created",
            "output_size",
            "groups",
        ):
            assert getattr(replay_report, field_name) == getattr(
                fresh_report, field_name
            ), field_name
        assert replay_report.groups_replayed <= replay_report.groups

    @settings(max_examples=25, deadline=None)
    @given(churned_pair())
    def test_cchase_replay_is_byte_identical(self, pair):
        # End to end through the c-chase: E/S instances under the
        # employment mapping, failures included (a churned salary chain
        # can legitimately make the key egd equate two constants).
        base, churned = pair
        setting = employment_setting()

        def relabel(instance):
            result = ConcreteInstance()
            for item in instance.facts():
                if item.arity == 1:
                    if item.relation == "R":
                        relation, values = "E", [item.data[0].value, "co1"]
                    else:
                        # Salary varies with the stamp, so overlapping
                        # churned chains can equate two constants and
                        # fail the chase — the failure path replays too.
                        relation = "S"
                        values = [
                            item.data[0].value,
                            f"{item.interval.start}k",
                        ]
                    result.add(
                        concrete_fact(relation, *values, interval=item.interval)
                    )
            return result

        base_es, churned_es = relabel(base), relabel(churned)
        first = c_chase(base_es, setting, incremental=True)
        incremental = c_chase(churned_es, setting, incremental=first)
        fresh = c_chase(churned_es, setting)
        assert incremental.failed == fresh.failed
        assert incremental.target == fresh.target
        assert tuple(incremental.target) == tuple(fresh.target)
        assert len(incremental.trace) == len(fresh.trace)
