"""Worst-case-optimal join ≡ flat join ≡ scan, swept by Hypothesis.

The generic (wcoj) join of :mod:`repro.relational.homomorphism` promises
more than answer equality: its row sequence is **byte-identical** to the
flat written-order join's for *any* plan shape (the order contract
documented next to :func:`_iter_wcoj_rows`), which is what lets the
chase, normalization and the query evaluator switch engines without
perturbing traces, null numbering or goldens.  This suite sweeps that
contract over the shapes the join modes actually disagree on how to
compute:

* cyclic bodies — the triangle and the 4-cycle, where ``auto`` picks
  the generic join;
* skew-heavy hub graphs — many length-2 paths, few closing edges, the
  worst case for the flat join's intermediate results;
* acyclic paths/stars under *forced* ``wcoj`` mode, where ``auto``
  would keep the flat join but the order contract must still hold.

Three layers are checked: the raw plan rows (byte-identical sequence),
tgd-style homomorphism matching (same match set under every mode, plus a
brute-force nested-loop scan reference), and query answering (indexed
evaluator under every mode vs the scan transcription).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concrete import ConcreteInstance, c_chase, concrete_fact
from repro.query import ConjunctiveQuery, naive_evaluate_concrete
from repro.relational import Instance, fact, parse_conjunction
from repro.relational.homomorphism import (
    _flat_join_plan,
    _iter_flat_join_rows,
    _iter_wcoj_rows,
    _plan_is_cyclic,
    find_homomorphisms_with_images,
    join_mode,
)
from repro.temporal import Interval
from repro.workloads import exchange_setting_triangle

# One parsed body per shape class.  All-variable, no repeats — the shapes
# the flat-join planner accepts (anything else falls back to the generic
# backtracking search in every mode, so there is nothing to compare).
TRIANGLE = parse_conjunction("T(x, y) & T(y, z) & T(z, x)").atoms
FOUR_CYCLE = parse_conjunction(
    "T(x, y) & T(y, z) & T(z, w) & T(w, x)"
).atoms
MIXED_CYCLE = parse_conjunction("A(x, y) & B(y, z) & C(z, x)").atoms
PATH = parse_conjunction("T(x, y) & T(y, z) & T(z, w)").atoms
STAR = parse_conjunction("A(h, x) & B(h, y) & C(h, z)").atoms

CYCLIC_BODIES = (TRIANGLE, FOUR_CYCLE, MIXED_CYCLE)
ACYCLIC_BODIES = (PATH, STAR)
MODES = ("flat", "wcoj", "auto")


@st.composite
def edge_instances(draw, relations=("T",), max_edges: int = 14):
    """Random digraphs over a tiny, hub-skewed vertex domain.

    Half the draws force an endpoint onto the hub vertex ``h``, so the
    generated graphs are dense around one vertex — lots of length-2
    paths, comparatively few closed cycles, exactly the skew the two
    join algorithms process differently.
    """
    vertices = ("h", "a", "b", "c", "d")
    count = draw(st.integers(min_value=0, max_value=max_edges))
    instance = Instance()
    for _ in range(count):
        relation = draw(st.sampled_from(relations))
        source = draw(st.sampled_from(vertices))
        target = draw(st.sampled_from(vertices))
        if draw(st.booleans()):
            source = "h"
        instance.add(fact(relation, source, target))
    return instance


def _scan_rows(atoms, instance):
    """Brute-force written-order nested-loop join: the scan reference.

    Outer-to-inner loops follow the written atom order over each
    relation's ``sort_key``-ordered facts, checking variable consistency
    positionally — no indexes, no plans.  By the order contract this is
    also the flat join's (and hence the wcoj's) exact row sequence.
    """
    rows = []
    candidates = [
        [
            item
            for item in instance.lookup_ordered(atom.relation, {})
            if item.arity == atom.arity
        ]
        for atom in atoms
    ]

    def descend(index, binding, row):
        if index == len(atoms):
            rows.append(tuple(row))
            return
        atom = atoms[index]
        for item in candidates[index]:
            extended = dict(binding)
            ok = True
            for variable, value in zip(atom.args, item.args, strict=True):
                if extended.setdefault(variable, value) != value:
                    ok = False
                    break
            if ok:
                descend(index + 1, extended, [*row, item])

    descend(0, {}, [])
    return rows


class TestRowSequenceByteIdentical:
    """The plan-level order contract: wcoj rows ≡ flat rows, in sequence."""

    @settings(max_examples=60, deadline=None)
    @given(instance=edge_instances())
    def test_cyclic_bodies(self, instance):
        for atoms in (TRIANGLE, FOUR_CYCLE, PATH):
            plan = _flat_join_plan(atoms)
            assert plan is not None
            flat = list(_iter_flat_join_rows(plan, instance))
            wcoj = list(_iter_wcoj_rows(plan, instance))
            assert flat == wcoj  # same rows, same order, same fact objects

    @settings(max_examples=60, deadline=None)
    @given(instance=edge_instances(relations=("A", "B", "C")))
    def test_mixed_relation_bodies(self, instance):
        for atoms in (MIXED_CYCLE, STAR):
            plan = _flat_join_plan(atoms)
            assert plan is not None
            assert list(_iter_flat_join_rows(plan, instance)) == list(
                _iter_wcoj_rows(plan, instance)
            )

    @settings(max_examples=60, deadline=None)
    @given(instance=edge_instances())
    def test_scan_reference(self, instance):
        for atoms in (TRIANGLE, FOUR_CYCLE, PATH):
            plan = _flat_join_plan(atoms)
            assert list(_iter_flat_join_rows(plan, instance)) == _scan_rows(
                atoms, instance
            )

    def test_plan_cyclicity_classification(self):
        # auto's selection rule: generic join exactly on the cyclic cores.
        for atoms in CYCLIC_BODIES:
            assert _plan_is_cyclic(_flat_join_plan(atoms))
        for atoms in ACYCLIC_BODIES:
            assert not _plan_is_cyclic(_flat_join_plan(atoms))

    def test_auto_mode_size_cutoff(self):
        # auto only pays the generic join's constant factor once some
        # body relation is big enough for the asymptotics to matter;
        # explicit flat/wcoj ignore the cutoff.
        from repro.relational.homomorphism import (
            _WCOJ_MIN_FACTS,
            _wcoj_selected,
        )

        small = Instance([fact("T", f"a{i}", f"b{i}") for i in range(10)])
        big = Instance(
            [fact("T", f"a{i}", f"b{i}") for i in range(_WCOJ_MIN_FACTS)]
        )
        plan = _flat_join_plan(TRIANGLE)
        with join_mode("auto"):
            assert not _wcoj_selected(plan, small)
            assert _wcoj_selected(plan, big)
            assert _wcoj_selected(plan)  # no instance: cyclicity decides
        with join_mode("wcoj"):
            assert _wcoj_selected(plan, small)
        with join_mode("flat"):
            assert not _wcoj_selected(plan, big)


class TestTgdMatchingModeEquivalence:
    """Homomorphism search — the chase's tgd matcher — under every mode.

    The match *set* (assignment plus per-atom images) must be identical
    across modes; the enumeration order may legitimately differ because
    flat mode's ≥3-atom search is cardinality-driven while the generic
    join is written-variable-ordered, so the comparison sorts.
    """

    @staticmethod
    def _matches(atoms, instance):
        # The per-atom image row fully determines the assignment (every
        # variable occurs in some atom), so the image rows are a faithful
        # fingerprint of the match set; repr gives them a sort order.
        found = []
        for assignment, images in find_homomorphisms_with_images(
            atoms, instance
        ):
            for atom, image in zip(atoms, images, strict=True):
                assert {
                    variable: image.args[position]
                    for position, variable in enumerate(atom.args)
                }.items() <= assignment.items()
            found.append(images)
        return sorted(found, key=repr)

    @settings(max_examples=50, deadline=None)
    @given(instance=edge_instances())
    def test_single_relation_bodies(self, instance):
        for atoms in (TRIANGLE, FOUR_CYCLE, PATH):
            reference = None
            for mode in MODES:
                with join_mode(mode):
                    found = self._matches(atoms, instance)
                if reference is None:
                    reference = found
                else:
                    assert found == reference
            assert reference == sorted(_scan_rows(atoms, instance), key=repr)

    @settings(max_examples=50, deadline=None)
    @given(instance=edge_instances(relations=("A", "B", "C")))
    def test_mixed_relation_bodies(self, instance):
        for atoms in (MIXED_CYCLE, STAR):
            results = []
            for mode in MODES:
                with join_mode(mode):
                    results.append(self._matches(atoms, instance))
            assert results[0] == results[1] == results[2]


@st.composite
def temporal_edge_instances(draw, relation: str = "T", max_edges: int = 10):
    """Hub-skewed digraphs with small colliding-endpoint stamps."""
    vertices = ("h", "a", "b", "c")
    count = draw(st.integers(min_value=0, max_value=max_edges))
    instance = ConcreteInstance()
    for _ in range(count):
        source = draw(st.sampled_from(vertices))
        target = draw(st.sampled_from(vertices))
        if draw(st.booleans()):
            source = "h"
        start = draw(st.integers(min_value=0, max_value=6))
        length = draw(st.integers(min_value=1, max_value=4))
        instance.add(
            concrete_fact(
                relation,
                source,
                target,
                interval=Interval(start, start + length),
            )
        )
    return instance


TRIANGLE_QUERY = ConjunctiveQuery.parse(
    "q(x, y, z) :- T(x, y) & T(y, z) & T(z, x)"
)
FOUR_CYCLE_QUERY = ConjunctiveQuery.parse(
    "q(x, z) :- T(x, y) & T(y, z) & T(z, w) & T(w, x)"
)


class TestQueryAnsweringModeEquivalence:
    """The indexed evaluator routes cyclic bodies through the same plan
    layer; every mode must agree with the scan transcription — answers,
    interval annotations, and (sorted) tuple order alike."""

    @settings(max_examples=40, deadline=None)
    @given(source=temporal_edge_instances())
    def test_cyclic_queries_all_modes(self, source):
        for query in (TRIANGLE_QUERY, FOUR_CYCLE_QUERY):
            with join_mode("flat"):
                scan = naive_evaluate_concrete(query, source, engine="scan")
            for mode in MODES:
                with join_mode(mode):
                    indexed = naive_evaluate_concrete(
                        query, source, engine="indexed"
                    )
                assert indexed.rows == scan.rows
                assert list(indexed) == list(scan)


class TestChaseModeEquivalence:
    """End to end: the triangle exchange chased under flat and wcoj must
    produce the identical target *and* the identical trace — nulls,
    firing order and all — because the tgd matcher's row order is the
    same content-determined sequence in both engines."""

    @settings(max_examples=30, deadline=None)
    @given(source=temporal_edge_instances(relation="R", max_edges=8))
    def test_triangle_exchange_byte_identical(self, source):
        setting = exchange_setting_triangle()
        runs = {}
        for mode in ("flat", "wcoj"):
            with join_mode(mode):
                result = c_chase(source, setting)
            assert result.succeeded
            runs[mode] = result
        assert runs["flat"].target == runs["wcoj"].target
        assert repr(runs["flat"].trace.steps) == repr(runs["wcoj"].trace.steps)
