"""Unit tests for chase traces, null factories and error types."""


from repro.chase import ChaseTrace, NullFactory
from repro.chase.trace import EgdStepRecord, FailureRecord, TgdStepRecord
from repro.errors import ChaseFailureError, ParseError, ReproError, TemporalError
from repro.relational import Constant, LabeledNull, fact
from repro.temporal import Interval


class TestNullFactory:
    def test_sequential_names(self):
        factory = NullFactory()
        assert factory.fresh() == LabeledNull("N1")
        assert factory.fresh() == LabeledNull("N2")
        assert factory.issued == 2

    def test_prefix(self):
        factory = NullFactory(prefix="Z")
        assert factory.fresh().name == "Z1"

    def test_annotated(self):
        factory = NullFactory()
        null = factory.fresh_annotated(Interval(2, 5))
        assert null.base == "N1" and null.annotation == Interval(2, 5)

    def test_independent_factories(self):
        a, b = NullFactory(), NullFactory()
        assert a.fresh() == b.fresh()  # both N1: scoping is per-factory


class TestChaseTrace:
    def test_filtering_by_kind(self):
        trace = ChaseTrace()
        tgd = TgdStepRecord("σ1", {}, (fact("T", "a"),), (LabeledNull("N1"),))
        egd = EgdStepRecord("ε1", LabeledNull("N1"), Constant("v"))
        trace.record(tgd)
        trace.record(egd)
        assert trace.tgd_steps == (tgd,)
        assert trace.egd_steps == (egd,)
        assert trace.failure is None
        assert len(trace) == 2

    def test_facts_added(self):
        trace = ChaseTrace()
        trace.record(TgdStepRecord("σ1", {}, (fact("T", "a"), fact("T", "b")), ()))
        trace.record(TgdStepRecord("σ2", {}, (), ()))
        assert trace.facts_added() == 2

    def test_failure_lookup(self):
        trace = ChaseTrace()
        failure = FailureRecord("ε1", Constant("1"), Constant("2"))
        trace.record(failure)
        assert trace.failure is failure

    def test_str_of_records(self):
        assert "σ1" in str(TgdStepRecord("σ1", {}, (fact("T", "a"),), ()))
        assert "↦" in str(EgdStepRecord("ε1", LabeledNull("N"), Constant("v")))
        assert "FAILED" in str(FailureRecord("ε1", Constant("1"), Constant("2")))


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ChaseFailureError, ReproError)
        assert issubclass(TemporalError, ReproError)
        assert issubclass(ParseError, ReproError)

    def test_chase_failure_payload(self):
        err = ChaseFailureError("ε1", Constant("1"), Constant("2"), context="x")
        assert err.left == Constant("1")
        assert "x" in str(err)

    def test_parse_error_position(self):
        err = ParseError("boom", text="R(x", position=2)
        assert "offset 2" in str(err)
