"""Unit tests for naive evaluation (Section 5)."""

from repro.abstract_view import semantics
from repro.concrete import ConcreteFact, ConcreteInstance, c_chase, concrete_fact
from repro.query import (
    ConjunctiveQuery,
    UnionQuery,
    evaluate_snapshot,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
    naive_evaluate_snapshot,
    verify_evaluation_correspondence,
)
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, IntervalSet, interval


def row(*values):
    return tuple(Constant(v) for v in values)


class TestSnapshotEvaluation:
    def test_plain_evaluation_keeps_nulls(self):
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, s)")
        inst = Instance([fact("Emp", "Ada", LabeledNull("N"))])
        results = evaluate_snapshot(q, inst)
        assert results == {(Constant("Ada"), LabeledNull("N"))}

    def test_naive_evaluation_drops_null_tuples(self):
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, s)")
        inst = Instance(
            [fact("Emp", "Ada", LabeledNull("N")), fact("Emp", "Bob", "13k")]
        )
        assert naive_evaluate_snapshot(q, inst) == {row("Bob", "13k")}

    def test_nulls_join_as_themselves(self):
        # Naive tables: N = N, so a self-join through the null succeeds,
        # but the output tuple with N is dropped.
        q = ConjunctiveQuery.parse("q(x) :- R(x, y) & S(y, x)")
        null = LabeledNull("N")
        inst = Instance([fact("R", "a", null), fact("S", null, "a")])
        assert naive_evaluate_snapshot(q, inst) == {row("a")}

    def test_union_on_snapshot(self):
        q = UnionQuery.of("q(x) :- A(x)", "q(x) :- B(x)")
        inst = Instance([fact("A", "1"), fact("B", "2")])
        assert naive_evaluate_snapshot(q, inst) == {row("1"), row("2")}


class TestAbstractEvaluation:
    def test_region_wise_supports(self, setting, source):
        solution = semantics(c_chase(source, setting).target)
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        answers = naive_evaluate_abstract(q, solution)
        assert answers.support(row("Ada", "18k")) == IntervalSet.of(interval(2013))
        assert answers.support(row("Bob", "13k")) == IntervalSet.of(
            Interval(2015, 2018)
        )

    def test_empty_instance(self):
        from repro.abstract_view import AbstractInstance

        q = ConjunctiveQuery.parse("q(x) :- R(x)")
        assert len(naive_evaluate_abstract(q, AbstractInstance.empty())) == 0


class TestConcreteEvaluation:
    def test_four_step_procedure(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        answers = naive_evaluate_concrete(q, solution)
        assert answers.to_temporal().support(row("Ada", "18k")) == IntervalSet.of(
            interval(2013)
        )

    def test_null_rows_dropped(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        q = ConjunctiveQuery.parse("q(s) :- Emp('Ada', 'IBM', s)")
        answers = naive_evaluate_concrete(q, solution).to_temporal()
        # Ada's 2012 salary is unknown: only the 18k row survives.
        assert len(answers) == 1
        assert answers.support(row("18k")) == IntervalSet.of(Interval(2013, 2014))

    def test_join_through_frozen_null_succeeds(self):
        # Step 2's fresh constants still join with themselves.
        null = AnnotatedNull("N", Interval(0, 4))
        solution = ConcreteInstance(
            [
                ConcreteFact("R", (Constant("a"), null), Interval(0, 4)),
                ConcreteFact("S", (null,), Interval(0, 4)),
            ]
        )
        q = ConjunctiveQuery.parse("q(x) :- R(x, y) & S(y)")
        answers = naive_evaluate_concrete(q, solution).to_temporal()
        assert answers.support(row("a")) == IntervalSet.of(Interval(0, 4))

    def test_join_normalizes_per_disjunct(self):
        # The two facts overlap but are not equal: normalization w.r.t.
        # the query body must fragment before t can bind.
        solution = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(0, 6)),
                concrete_fact("S", "a", interval=Interval(4, 9)),
            ]
        )
        q = ConjunctiveQuery.parse("q(x) :- R(x) & S(x)")
        answers = naive_evaluate_concrete(q, solution).to_temporal()
        assert answers.support(row("a")) == IntervalSet.of(Interval(4, 6))

    def test_union_query(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        union = UnionQuery.of(
            "q(n) :- Emp(n, 'IBM', s)",
            "q(n) :- Emp(n, 'Google', s)",
        )
        answers = naive_evaluate_concrete(union, solution).to_temporal()
        assert answers.support(row("Ada")) == IntervalSet.of(interval(2012))
        assert answers.support(row("Bob")) == IntervalSet.of(Interval(2013, 2018))


class TestTheorem21:
    def test_running_example(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        for text in [
            "q(n, s) :- Emp(n, c, s)",
            "q(n) :- Emp(n, 'IBM', s)",
            "q(n, c) :- Emp(n, c, s)",
            "q(c, s) :- Emp('Ada', c, s)",
        ]:
            assert verify_evaluation_correspondence(
                ConjunctiveQuery.parse(text), solution
            ), text

    def test_on_instance_with_unknowns_only(self):
        null = AnnotatedNull("N", Interval(0, 3))
        solution = ConcreteInstance(
            [ConcreteFact("R", (Constant("a"), null), Interval(0, 3))]
        )
        q = ConjunctiveQuery.parse("q(x, y) :- R(x, y)")
        assert verify_evaluation_correspondence(q, solution)
        assert len(naive_evaluate_concrete(q, solution)) == 0
