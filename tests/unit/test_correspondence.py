"""Unit tests for the correspondence module (Figure 10 machinery)."""

from repro.concrete import ConcreteInstance, c_chase, concrete_fact
from repro.correspondence import (
    CorrespondenceReport,
    concrete_is_solution,
    verify_correspondence,
)
from repro.dependencies import DataExchangeSetting
from repro.relational import Schema
from repro.temporal import Interval


class TestConcreteIsSolution:
    def test_chase_output_accepted(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        assert concrete_is_solution(source, solution, setting)

    def test_empty_target_rejected(self, setting, source):
        assert not concrete_is_solution(source, ConcreteInstance(), setting)

    def test_temporally_truncated_target_rejected(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        truncated = ConcreteInstance(
            item.with_interval(Interval(item.interval.start, 2016))
            if item.interval.is_unbounded
            else item
            for item in solution.facts()
        )
        # Facts that held forever now stop at 2016: σ1 is violated later.
        assert not concrete_is_solution(source, truncated, setting)

    def test_superset_target_accepted(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        bigger = solution.copy()
        bigger.add(
            concrete_fact("Emp", "Zoe", "SUN", "50k", interval=Interval(0, 5))
        )
        assert concrete_is_solution(source, bigger, setting)

    def test_egd_violating_target_rejected(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        bad = solution.copy()
        bad.add(
            concrete_fact(
                "Emp", "Ada", "IBM", "99k", interval=Interval(2013, 2014)
            )
        )
        assert not concrete_is_solution(source, bad, setting)


class TestCorrespondenceReport:
    def test_success_report_fields(self, setting, source):
        report = verify_correspondence(source, setting)
        assert isinstance(report, CorrespondenceReport)
        assert report.holds and report.equivalent and not report.both_failed
        assert report.concrete_semantics is not None
        assert report.concrete_result.succeeded
        assert report.abstract_result.succeeded

    def test_failure_report_fields(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 6)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        report = verify_correspondence(source, setting)
        assert report.holds and report.both_failed and not report.equivalent
        assert report.concrete_semantics is None

    def test_empty_source_trivial_square(self, setting):
        report = verify_correspondence(ConcreteInstance(), setting)
        assert report.holds and report.equivalent

    def test_naive_normalization_route(self, setting, source):
        report = verify_correspondence(source, setting, normalization="naive")
        assert report.holds
