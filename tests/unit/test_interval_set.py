"""Unit tests for canonical interval sets."""

import pytest

from repro.errors import TemporalError
from repro.temporal import INFINITY, Interval, IntervalSet, interval
from repro.temporal.interval_set import (
    refine_breakpoints,
    sweep_bipartite_clusters,
    sweep_overlap_clusters,
)


class TestCanonicalization:
    def test_merges_overlapping(self):
        assert IntervalSet.of(Interval(1, 5), Interval(4, 9)).intervals == (
            Interval(1, 9),
        )

    def test_merges_adjacent(self):
        assert IntervalSet.of(Interval(1, 4), Interval(4, 9)).intervals == (
            Interval(1, 9),
        )

    def test_keeps_gaps(self):
        result = IntervalSet.of(Interval(1, 3), Interval(5, 9))
        assert result.intervals == (Interval(1, 3), Interval(5, 9))

    def test_order_independent(self):
        a = IntervalSet.of(Interval(5, 9), Interval(1, 3))
        b = IntervalSet.of(Interval(1, 3), Interval(5, 9))
        assert a == b
        assert hash(a) == hash(b)

    def test_unbounded_absorbs(self):
        assert IntervalSet.of(interval(4), Interval(6, 9)).intervals == (
            interval(4),
        )


class TestConstructorsAndPredicates:
    def test_empty(self):
        empty = IntervalSet.empty()
        assert empty.is_empty and not empty
        assert len(empty) == 0

    def test_all_time(self):
        assert IntervalSet.all_time().intervals == (interval(0),)

    def test_point(self):
        assert IntervalSet.point(7).intervals == (Interval(7, 8),)

    def test_membership(self):
        s = IntervalSet.of(Interval(1, 3), interval(10))
        assert 2 in s and 10 in s and 10**6 in s
        assert 3 not in s and 5 not in s

    def test_is_unbounded(self):
        assert IntervalSet.of(interval(3)).is_unbounded
        assert not IntervalSet.of(Interval(3, 9)).is_unbounded

    def test_total_duration(self):
        assert IntervalSet.of(Interval(1, 3), Interval(5, 9)).total_duration() == 6
        assert IntervalSet.of(interval(0)).total_duration() is INFINITY
        assert IntervalSet.empty().total_duration() == 0


class TestAlgebra:
    def test_union(self):
        a = IntervalSet.of(Interval(1, 3))
        b = IntervalSet.of(Interval(2, 6), Interval(9, 11))
        assert a.union(b).intervals == (Interval(1, 6), Interval(9, 11))

    def test_union_with_single_interval(self):
        assert IntervalSet.of(Interval(1, 3)).union(Interval(3, 5)).intervals == (
            Interval(1, 5),
        )

    def test_intersect(self):
        a = IntervalSet.of(Interval(1, 6), interval(10))
        b = IntervalSet.of(Interval(4, 12))
        assert a.intersect(b).intervals == (Interval(4, 6), Interval(10, 12))

    def test_intersect_empty(self):
        a = IntervalSet.of(Interval(1, 3))
        assert a.intersect(IntervalSet.of(Interval(5, 7))).is_empty

    def test_difference(self):
        a = IntervalSet.of(Interval(0, 10))
        b = IntervalSet.of(Interval(2, 4), Interval(6, 8))
        assert a.difference(b).intervals == (
            Interval(0, 2),
            Interval(4, 6),
            Interval(8, 10),
        )

    def test_complement_roundtrip(self):
        s = IntervalSet.of(Interval(2, 4), interval(9))
        assert s.complement().complement() == s

    def test_complement_of_empty_is_all_time(self):
        assert IntervalSet.empty().complement() == IntervalSet.all_time()

    def test_symmetric_difference(self):
        a = IntervalSet.of(Interval(0, 5))
        b = IntervalSet.of(Interval(3, 8))
        assert a.symmetric_difference(b).intervals == (
            Interval(0, 3),
            Interval(5, 8),
        )

    def test_covers(self):
        big = IntervalSet.of(Interval(0, 10), interval(20))
        assert big.covers(Interval(2, 5))
        assert big.covers(IntervalSet.of(Interval(1, 3), interval(30)))
        assert not big.covers(Interval(8, 12))


class TestQueries:
    def test_min_point(self):
        assert IntervalSet.of(Interval(4, 6), Interval(2, 3)).min_point() == 2

    def test_min_point_of_empty_raises(self):
        with pytest.raises(TemporalError):
            IntervalSet.empty().min_point()

    def test_max_finite_bound(self):
        assert IntervalSet.of(Interval(2, 5), interval(9)).max_finite_bound() == 9
        assert IntervalSet.of(Interval(2, 5)).max_finite_bound() == 5
        assert IntervalSet.empty().max_finite_bound() is None

    def test_breakpoints(self):
        s = IntervalSet.of(Interval(2, 5), interval(9))
        assert s.breakpoints() == (2, 5, 9, INFINITY)

    def test_points_iteration(self):
        s = IntervalSet.of(Interval(1, 3), Interval(6, 8))
        assert list(s.points()) == [1, 2, 6, 7]

    def test_str(self):
        assert str(IntervalSet.empty()) == "{}"
        assert str(IntervalSet.of(Interval(1, 3), interval(5))) == "[1, 3) ∪ [5, inf)"


class TestRefineBreakpoints:
    def test_refines_at_all_endpoints(self):
        pieces = refine_breakpoints([Interval(0, 4), Interval(2, 6)])
        assert pieces == (Interval(0, 2), Interval(2, 4), Interval(4, 6))

    def test_gap_not_covered(self):
        pieces = refine_breakpoints([Interval(0, 2), Interval(5, 7)])
        assert pieces == (Interval(0, 2), Interval(5, 7))

    def test_unbounded_tail(self):
        pieces = refine_breakpoints([Interval(0, 4), interval(2)])
        assert pieces == (Interval(0, 2), Interval(2, 4), interval(4))

    def test_empty(self):
        assert refine_breakpoints([]) == ()


class TestSweepOverlapClusters:
    def test_empty(self):
        assert sweep_overlap_clusters([]) == ((), 0)

    def test_disjoint_are_singletons(self):
        clusters, pairs = sweep_overlap_clusters([Interval(0, 2), Interval(5, 7)])
        assert clusters == ((0,), (1,)) and pairs == 0

    def test_adjacent_do_not_pair(self):
        # Half-open semantics: [0,2) and [2,4) share no point.
        clusters, pairs = sweep_overlap_clusters([Interval(0, 2), Interval(2, 4)])
        assert clusters == ((0,), (1,)) and pairs == 0

    def test_transitive_chain_is_one_cluster(self):
        stamps = [Interval(0, 3), Interval(2, 5), Interval(4, 7)]
        clusters, pairs = sweep_overlap_clusters(stamps)
        assert clusters == ((0, 1, 2),)
        assert pairs == 2  # 0~1 and 1~2 overlap; 0~2 do not

    def test_duplicated_endpoints(self):
        stamps = [Interval(1, 4), Interval(1, 4), Interval(1, 4)]
        clusters, pairs = sweep_overlap_clusters(stamps)
        assert len(clusters) == 1 and pairs == 3  # all three pairs

    def test_unbounded_overlaps_every_later_start(self):
        stamps = [interval(0), Interval(10, 11), Interval(50, 51)]
        clusters, pairs = sweep_overlap_clusters(stamps)
        assert clusters == ((0, 1, 2),) and pairs == 2

    def test_width_one_interval(self):
        clusters, pairs = sweep_overlap_clusters([Interval(3, 4), Interval(3, 4)])
        assert clusters == ((0, 1),) and pairs == 1


class TestSweepBipartiteClusters:
    def test_no_edges_no_clusters(self):
        clusters, pairs = sweep_bipartite_clusters(
            [Interval(0, 2)], [Interval(5, 7)]
        )
        assert clusters == () and pairs == 0

    def test_same_side_overlap_is_not_an_edge(self):
        # Two left intervals overlap each other but have no right
        # witness: they stay separate (singletons are not reported).
        clusters, pairs = sweep_bipartite_clusters(
            [Interval(0, 5), Interval(3, 8)], []
        )
        assert clusters == () and pairs == 0

    def test_witness_connects_same_side(self):
        # One right interval overlapping both left intervals joins them.
        clusters, pairs = sweep_bipartite_clusters(
            [Interval(0, 3), Interval(6, 9)], [Interval(2, 7)]
        )
        assert pairs == 2
        assert clusters == (((0, 1), (0,)),)

    def test_adjacent_cross_pair_is_no_edge(self):
        clusters, pairs = sweep_bipartite_clusters(
            [Interval(0, 2)], [Interval(2, 4)]
        )
        assert clusters == () and pairs == 0

    def test_identical_stamps_pair_once(self):
        clusters, pairs = sweep_bipartite_clusters(
            [Interval(1, 4)], [Interval(1, 4)]
        )
        assert pairs == 1
        assert clusters == (((0,), (0,)),)

    def test_unbounded_witness(self):
        clusters, pairs = sweep_bipartite_clusters(
            [Interval(0, 1), Interval(100, 101)], [interval(0)]
        )
        assert pairs == 2
        assert clusters == (((0, 1), (0,)),)

    def test_exact_integer_ends_beyond_float_precision(self):
        # Ends must stay exact ints in the sweep: float coercion would
        # round 2**53 + 1 down and silently drop this overlap.
        big = 2**53
        clusters, pairs = sweep_bipartite_clusters(
            [Interval(0, big + 1)] * 3,
            [Interval(big, big + 2)] * 2 + [Interval(big + 1, big + 3)] * 4,
        )
        assert pairs == 6  # every left overlaps both [big, big+2) rights
