"""Unit tests for the abstract (snapshot-wise) chase — Proposition 4."""

import pytest

from repro.abstract_view import (
    AbstractInstance,
    TemplateFact,
    abstract_chase,
    is_solution,
    semantics,
)
from repro.chase import NullFactory
from repro.concrete import ConcreteInstance, concrete_fact
from repro.dependencies import DataExchangeSetting
from repro.errors import ChaseFailureError, InstanceError
from repro.relational import Constant, Instance, LabeledNull, Schema, fact
from repro.temporal import Interval


class TestSuccessfulChase:
    def test_figure3_snapshots(self, abstract_source, setting):
        result = abstract_chase(abstract_source, setting)
        assert result.succeeded
        target = result.target
        # Figure 3 of the paper.
        snap_2013 = target.snapshot(2013)
        assert fact("Emp", "Ada", "IBM", "18k") in snap_2013
        bob = [f for f in snap_2013.facts_of("Emp") if f.args[0] == Constant("Bob")]
        assert len(bob) == 1 and isinstance(bob[0].args[2], LabeledNull)
        snap_2015 = target.snapshot(2015)
        assert fact("Emp", "Bob", "IBM", "13k") in snap_2015
        assert fact("Emp", "Ada", "Google", "18k") in snap_2015
        snap_2018 = target.snapshot(2018)
        assert snap_2018 == Instance([fact("Emp", "Ada", "Google", "18k")])

    def test_result_is_solution(self, abstract_source, setting):
        result = abstract_chase(abstract_source, setting)
        assert is_solution(abstract_source, result.target, setting)

    def test_fresh_nulls_differ_across_regions(self, abstract_source, setting):
        # Bob's unknown salary at 2013-2014 and at 2014-2015 must be
        # DIFFERENT per-snapshot families (fresh nulls per snapshot).
        target = abstract_chase(abstract_source, setting).target
        null_2013 = target.snapshot(2013).nulls()
        null_2014 = target.snapshot(2014).nulls()
        assert null_2013 and null_2014
        assert null_2013.isdisjoint(null_2014)

    def test_region_results_recorded(self, abstract_source, setting):
        result = abstract_chase(abstract_source, setting)
        assert len(result.region_results) == len(abstract_source.regions())

    def test_empty_source(self, setting):
        result = abstract_chase(AbstractInstance.empty(), setting)
        assert result.succeeded
        assert not result.target

    def test_null_factory_shared_across_regions(self, abstract_source, setting):
        factory = NullFactory()
        abstract_chase(abstract_source, setting, null_factory=factory)
        # Several regions produced nulls; all names distinct by counter.
        assert factory.issued >= 3


class TestFailingChase:
    @pytest.fixture
    def clash_setting(self) -> DataExchangeSetting:
        return DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )

    def test_failure_region_identified(self, clash_setting):
        source = semantics(
            ConcreteInstance(
                [
                    concrete_fact("P", "a", "1", interval=Interval(0, 6)),
                    concrete_fact("P", "a", "2", interval=Interval(4, 9)),
                ]
            )
        )
        result = abstract_chase(source, clash_setting)
        assert result.failed
        assert result.failed_region == Interval(4, 6)
        with pytest.raises(ChaseFailureError):
            result.unwrap()

    def test_no_failure_when_disjoint(self, clash_setting):
        source = semantics(
            ConcreteInstance(
                [
                    concrete_fact("P", "a", "1", interval=Interval(0, 4)),
                    concrete_fact("P", "a", "2", interval=Interval(4, 9)),
                ]
            )
        )
        assert abstract_chase(source, clash_setting).succeeded


class TestPreconditions:
    def test_incomplete_source_rejected(self, setting):
        dirty = AbstractInstance(
            [TemplateFact("E", (Constant("Ada"), LabeledNull("N")), Interval(0, 2))]
        )
        with pytest.raises(InstanceError, match="complete"):
            abstract_chase(dirty, setting)
