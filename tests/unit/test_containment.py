"""Unit tests for CQ containment, equivalence and minimization."""


from repro.query import ConjunctiveQuery, UnionQuery
from repro.query.containment import (
    are_equivalent,
    canonical_instance,
    is_contained_in,
    minimize,
    union_contained_in,
)


def q(text: str) -> ConjunctiveQuery:
    return ConjunctiveQuery.parse(text)


class TestCanonicalInstance:
    def test_head_variables_frozen_to_constants(self):
        instance, head = canonical_instance(q("q(x) :- R(x, y)"))
        assert len(instance) == 1
        assert head[0].is_constant

    def test_existential_variables_frozen_to_nulls(self):
        instance, _head = canonical_instance(q("q(x) :- R(x, y)"))
        assert len(instance.nulls()) == 1

    def test_body_constants_survive(self):
        instance, _head = canonical_instance(q("q(x) :- R(x, 'v')"))
        (item,) = instance.facts()
        assert str(item.args[1]) == "v"


class TestContainment:
    def test_reflexive(self):
        query = q("q(x) :- R(x, y) & S(y)")
        assert is_contained_in(query, query)

    def test_more_constrained_contained_in_less(self):
        tight = q("q(x) :- R(x, y) & S(y)")
        loose = q("q(x) :- R(x, y)")
        assert is_contained_in(tight, loose)
        assert not is_contained_in(loose, tight)

    def test_constant_specializes_variable(self):
        special = q("q(x) :- R(x, 'v')")
        general = q("q(x) :- R(x, y)")
        assert is_contained_in(special, general)
        assert not is_contained_in(general, special)

    def test_self_join_vs_single_atom(self):
        # R(x,y) ∧ R(y,x) is contained in R(x,y)... with head (x):
        pair = q("q(x) :- R(x, y) & R(y, x)")
        single = q("q(x) :- R(x, y)")
        assert is_contained_in(pair, single)
        assert not is_contained_in(single, pair)

    def test_different_relations_incomparable(self):
        assert not is_contained_in(q("q(x) :- R(x)"), q("q(x) :- S(x)"))

    def test_arity_mismatch(self):
        assert not is_contained_in(q("q(x) :- R(x, y)"), q("q(x, y) :- R(x, y)"))

    def test_head_permutation_matters(self):
        forward = q("q(x, y) :- R(x, y)")
        backward = q("q(y, x) :- R(x, y)")
        assert not is_contained_in(forward, backward)


class TestEquivalence:
    def test_redundant_atom_equivalent(self):
        redundant = q("q(x) :- R(x, y) & R(x, z)")
        lean = q("q(x) :- R(x, y)")
        assert are_equivalent(redundant, lean)

    def test_renamed_variables_equivalent(self):
        assert are_equivalent(
            q("q(a) :- R(a, b) & S(b)"),
            q("q(x) :- R(x, y) & S(y)"),
        )

    def test_nonequivalent(self):
        assert not are_equivalent(
            q("q(x) :- R(x, y)"), q("q(x) :- R(x, y) & S(y)")
        )


class TestMinimize:
    def test_drops_redundant_atom(self):
        minimized = minimize(q("q(x) :- R(x, y) & R(x, z)"))
        assert len(minimized.body) == 1
        assert are_equivalent(minimized, q("q(x) :- R(x, y)"))

    def test_keeps_necessary_atoms(self):
        query = q("q(x) :- R(x, y) & S(y)")
        assert len(minimize(query).body) == 2

    def test_already_minimal_unchanged(self):
        query = q("q(x) :- R(x, y)")
        assert minimize(query).body == query.body

    def test_triangle_with_shortcut(self):
        # R(x,y) ∧ R(y,z) ∧ R(x,w): the dangling R(x,w) folds into R(x,y).
        query = q("q(x) :- R(x, y) & R(y, z) & R(x, w)")
        minimized = minimize(query)
        assert len(minimized.body) == 2
        assert are_equivalent(minimized, query)

    def test_head_variables_protected(self):
        # Both atoms bind head variables; nothing may be dropped.
        query = q("q(x, w) :- R(x, y) & R(w, z)")
        assert len(minimize(query).body) == 2

    def test_minimized_query_same_certain_answers(self, setting, source):
        from repro.query import certain_answers_concrete

        redundant = q("q(n, s) :- Emp(n, c, s) & Emp(n, c2, s2)")
        minimized = minimize(redundant)
        assert len(minimized.body) < len(redundant.body)
        assert certain_answers_concrete(
            redundant, source, setting
        ) == certain_answers_concrete(minimized, source, setting)


class TestUnionContainment:
    def test_disjunct_wise(self):
        small = UnionQuery.of("q(x) :- R(x, 'v')")
        big = UnionQuery.of("q(x) :- R(x, y)", "q(x) :- S(x)")
        assert union_contained_in(small, big)
        assert not union_contained_in(big, small)
