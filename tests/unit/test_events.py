"""Unit tests for the event-sourced ingestion layer (repro.events)."""

import json
import pickle

import pytest

from repro.concrete import concrete_fact
from repro.errors import EventError
from repro.events import (
    EntityRule,
    Event,
    EventLog,
    EventMapping,
    RelationshipRule,
    TimeScale,
)
from repro.temporal import interval


def org_mapping(**scale_kw):
    return EventMapping(
        entities=(
            EntityRule("dept", "Dept", ("$id", "manager")),
            EntityRule("employee", "Emp", ("$id", "dept")),
        ),
        relationships=(RelationshipRule("assigned", "Task", ("$from", "$to")),),
        scale=TimeScale(**scale_kw) if scale_kw else TimeScale(),
    )


def ev(eid, entity, etype, point, payload=None, **extra):
    return {
        "id": eid,
        "entity_id": entity,
        "event_type": etype,
        "timestamp": point,
        "payload": payload or {},
        **extra,
    }


def hire(eid, who, dept, point, **extra):
    return ev(eid, who, "created", point, {"type": "employee", "dept": dept}, **extra)


class TestTimeScale:
    def test_integer_points_pass_through(self):
        assert TimeScale().point(17) == 17

    def test_iso_to_point_days(self):
        scale = TimeScale(epoch="2020-01-01T00:00:00+00:00", unit="days")
        assert scale.point("2020-01-01T00:00:00+00:00") == 0
        assert scale.point("2020-01-03T12:00:00+00:00") == 2
        assert scale.point("2020-01-03T00:00:00Z") == 2  # Zulu suffix

    def test_naive_timestamps_read_as_utc(self):
        scale = TimeScale(epoch="2020-01-01T00:00:00+00:00", unit="hours")
        assert scale.point("2020-01-01T05:30:00") == 5

    def test_timestamp_inverse(self):
        scale = TimeScale(epoch="2020-01-01T00:00:00+00:00", unit="days")
        assert scale.point(scale.timestamp(41)) == 41

    def test_pre_epoch_rejected(self):
        scale = TimeScale(epoch="2020-01-01T00:00:00+00:00")
        with pytest.raises(EventError):
            scale.point("2019-12-31T23:00:00+00:00")

    def test_bad_inputs(self):
        with pytest.raises(EventError):
            TimeScale(unit="fortnights")
        with pytest.raises(EventError):
            TimeScale(epoch="not a date")
        with pytest.raises(EventError):
            TimeScale().point(-1)
        with pytest.raises(EventError):
            TimeScale().point(True)
        with pytest.raises(EventError):
            TimeScale().point({"when": "now"})

    def test_codec(self):
        scale = TimeScale(epoch="2021-06-01T00:00:00+00:00", unit="hours")
        assert TimeScale.from_json(scale.to_json()) == scale
        with pytest.raises(EventError):
            TimeScale.from_json({"unit": "days", "tz": "UTC"})


class TestEventParsing:
    SCALE = TimeScale()

    def test_parse_line(self):
        event = Event.parse_line(json.dumps(hire("e1", "p1", "d1", 3)), self.SCALE)
        assert (event.id, event.entity_id, event.point) == ("e1", "p1", 3)

    def test_bad_json_line(self):
        with pytest.raises(EventError):
            Event.parse_line("{not json", self.SCALE)

    def test_unknown_event_type(self):
        with pytest.raises(EventError):
            Event.from_json(ev("e1", "p1", "renamed", 0), self.SCALE)

    def test_missing_fields(self):
        for broken in (
            {"entity_id": "p1", "event_type": "deleted", "timestamp": 0},
            {"id": "e1", "event_type": "deleted", "timestamp": 0},
            {"id": "e1", "entity_id": "p1", "timestamp": 0},
            {"id": "e1", "entity_id": "p1", "event_type": "deleted"},
        ):
            with pytest.raises(EventError):
                Event.from_json(broken, self.SCALE)

    def test_unknown_field_rejected(self):
        with pytest.raises(EventError):
            Event.from_json(ev("e1", "p1", "deleted", 0, tags=["x"]), self.SCALE)

    def test_created_needs_entity_type(self):
        with pytest.raises(EventError):
            Event.from_json(ev("e1", "p1", "created", 0, {"dept": "d1"}), self.SCALE)

    def test_relationship_needs_type_and_other(self):
        with pytest.raises(EventError):
            Event.from_json(
                ev("e1", "p1", "relationship_added", 0, {"type": "assigned"}),
                self.SCALE,
            )

    def test_bad_revision(self):
        with pytest.raises(EventError):
            Event.from_json(hire("e1", "p1", "d1", 0, revision=-1), self.SCALE)
        with pytest.raises(EventError):
            Event.from_json(hire("e1", "p1", "d1", 0, revision=True), self.SCALE)

    def test_supersedes_is_total_on_same_id(self):
        original = Event.from_json(hire("e1", "p1", "d1", 0), self.SCALE)
        fixed = Event.from_json(hire("e1", "p1", "d2", 0, revision=1), self.SCALE)
        assert fixed.supersedes(original) and not original.supersedes(fixed)


class TestMappingCodec:
    def test_round_trip(self):
        mapping = org_mapping(epoch="2020-01-01T00:00:00+00:00", unit="days")
        again = EventMapping.from_json(mapping.to_json())
        assert again.to_json() == mapping.to_json()

    def test_needs_at_least_one_rule(self):
        with pytest.raises(EventError):
            EventMapping(entities=(), relationships=(), scale=TimeScale())

    def test_bad_rule_payloads(self):
        base = org_mapping().to_json()
        for mutate in (
            lambda p: p["entities"].append({"type": "x"}),
            lambda p: p["entities"][0].pop("relation"),
            lambda p: p.update(extra=1),
        ):
            payload = json.loads(json.dumps(base))
            mutate(payload)
            with pytest.raises(EventError):
                EventMapping.from_json(payload)


class TestCompile:
    MAPPING = org_mapping()

    def test_entity_lifecycle_coalesces(self):
        log = EventLog(self.MAPPING)
        log.ingest(
            [
                hire("e1", "p1", "d1", 2),
                ev("e2", "p1", "deleted", 9),
            ]
        )
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Emp", "p1", "d1", interval=interval(2, 9))
        }

    def test_open_fact_extends_to_infinity(self):
        log = EventLog(self.MAPPING)
        log.ingest([hire("e1", "p1", "d1", 2)])
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Emp", "p1", "d1", interval=interval(2))
        }

    def test_update_splits_fact(self):
        log = EventLog(self.MAPPING)
        log.ingest(
            [
                hire("e1", "p1", "d1", 2),
                ev("e2", "p1", "updated", 6, {"dept": "d2"}),
            ]
        )
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Emp", "p1", "d1", interval=interval(2, 6)),
            concrete_fact("Emp", "p1", "d2", interval=interval(6)),
        }

    def test_noop_update_does_not_split(self):
        log = EventLog(self.MAPPING)
        log.ingest(
            [
                hire("e1", "p1", "d1", 2),
                ev("e2", "p1", "updated", 6, {"dept": "d1"}),
            ]
        )
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Emp", "p1", "d1", interval=interval(2))
        }

    def test_delete_and_recreate_same_point_stays_coalesced(self):
        log = EventLog(self.MAPPING)
        log.ingest(
            [
                hire("e1", "p1", "d1", 2),
                ev("e2", "p1", "deleted", 6),
                hire("e3", "p1", "d1", 6),
            ]
        )
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Emp", "p1", "d1", interval=interval(2))
        }

    def test_relationships(self):
        log = EventLog(self.MAPPING)
        log.ingest(
            [
                ev("e1", "p1", "relationship_added", 3, {"type": "assigned", "other": "t1"}),
                ev("e2", "p1", "relationship_removed", 8, {"type": "assigned", "other": "t1"}),
            ]
        )
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Task", "p1", "t1", interval=interval(3, 8))
        }

    def test_unmapped_entity_type_compiles_to_nothing(self):
        log = EventLog(self.MAPPING)
        log.ingest([ev("e1", "x1", "created", 0, {"type": "contractor"})])
        assert not set(log.snapshot_at(None).facts())

    def test_non_scalar_mapped_value_rejected(self):
        log = EventLog(self.MAPPING)
        with pytest.raises(EventError):
            log.ingest(
                [ev("e1", "p1", "created", 0, {"type": "employee", "dept": ["d1"]})]
            )

    def test_snapshot_prefix(self):
        log = EventLog(self.MAPPING)
        log.ingest(
            [
                hire("e1", "p1", "d1", 2),
                ev("e2", "p1", "updated", 6, {"dept": "d2"}),
            ]
        )
        # At t=4 the transfer has not happened: the d1 fact is still open.
        assert set(log.snapshot_at(4).facts()) == {
            concrete_fact("Emp", "p1", "d1", interval=interval(2))
        }


class TestIngest:
    MAPPING = org_mapping()

    def test_report_counts(self):
        log = EventLog(self.MAPPING)
        report = log.ingest(
            [
                hire("e1", "p1", "d1", 5),
                hire("e2", "p2", "d9", 3),  # behind e1? no — same batch
            ]
        )
        assert report.accepted == 2
        assert report.out_of_order == 0  # horizon is pre-batch
        report = log.ingest([hire("e3", "p3", "d1", 1)])
        assert report.out_of_order == 1

    def test_duplicates_and_corrections(self):
        log = EventLog(self.MAPPING)
        log.ingest([hire("e1", "p1", "d1", 5)])
        assert log.ingest([hire("e1", "p1", "d1", 5)]).duplicates == 1
        fixed = hire("e1", "p1", "d2", 5, revision=1)
        assert log.ingest([fixed]).corrections == 1
        # The stale original arriving after its correction is a duplicate.
        assert log.ingest([hire("e1", "p1", "d1", 5)]).duplicates == 1
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Emp", "p1", "d2", interval=interval(5))
        }

    def test_correction_before_original_wins_either_way(self):
        original = hire("e1", "p1", "d1", 5)
        fixed = hire("e1", "p1", "d2", 5, revision=1)
        forward, backward = EventLog(self.MAPPING), EventLog(self.MAPPING)
        forward.ingest([original, fixed])
        backward.ingest([fixed, original])
        assert set(forward.snapshot_at(None).facts()) == set(
            backward.snapshot_at(None).facts()
        )

    def test_text_blob_and_event_objects(self):
        log = EventLog(self.MAPPING)
        blob = "\n".join(json.dumps(hire(f"e{i}", f"p{i}", "d1", i)) for i in range(3))
        assert log.ingest(blob).accepted == 3
        event = Event.from_json(hire("e9", "p9", "d1", 9), self.MAPPING.scale)
        assert log.ingest([event]).accepted == 1

    def test_single_mapping_rejected(self):
        log = EventLog(self.MAPPING)
        with pytest.raises(EventError):
            log.ingest(hire("e1", "p1", "d1", 0))

    def test_malformed_batch_is_atomic(self):
        log = EventLog(self.MAPPING)
        log.ingest([hire("e1", "p1", "d1", 0)])
        generation = log.generation
        with pytest.raises(EventError):
            log.ingest([hire("e2", "p2", "d1", 1), {"id": "e3"}])
        assert log.generation == generation
        assert len(log) == 1


class TestPending:
    MAPPING = org_mapping()

    def test_orphan_update_parks(self):
        log = EventLog(self.MAPPING)
        report = log.ingest([ev("e1", "p1", "updated", 5, {"dept": "d2"})])
        assert report.pending == 1
        assert [event.id for event in log.pending_events()] == ["e1"]
        assert not set(log.snapshot_at(None).facts())

    def test_pending_drains_when_history_arrives(self):
        log = EventLog(self.MAPPING)
        log.ingest([ev("e1", "p1", "updated", 5, {"dept": "d2"})])
        report = log.ingest([hire("e0", "p1", "d1", 2)])
        assert report.pending == 0
        assert log.pending_events() == ()
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Emp", "p1", "d1", interval=interval(2, 5)),
            concrete_fact("Emp", "p1", "d2", interval=interval(5)),
        }

    def test_removed_before_added(self):
        log = EventLog(self.MAPPING)
        removed = ev("e2", "p1", "relationship_removed", 8, {"type": "assigned", "other": "t1"})
        added = ev("e1", "p1", "relationship_added", 3, {"type": "assigned", "other": "t1"})
        assert log.ingest([removed]).pending == 1
        assert log.ingest([added]).pending == 0
        assert set(log.snapshot_at(None).facts()) == {
            concrete_fact("Task", "p1", "t1", interval=interval(3, 8))
        }

    def test_double_create_parks_second(self):
        log = EventLog(self.MAPPING)
        report = log.ingest(
            [hire("e1", "p1", "d1", 2), hire("e2", "p1", "d2", 4)]
        )
        assert report.pending == 1
        assert [event.id for event in log.pending_events()] == ["e2"]


class TestDerivation:
    MAPPING = org_mapping()

    def test_delta_between(self):
        log = EventLog(self.MAPPING)
        log.ingest(
            [
                hire("e1", "p1", "d1", 2),
                ev("e2", "p1", "updated", 6, {"dept": "d2"}),
            ]
        )
        delta = log.delta_between(4, None)
        assert delta.applied_to(log.snapshot_at(4)) == log.snapshot_at(None)

    def test_follow_bootstrap_and_advance(self):
        log = EventLog(self.MAPPING)
        cursor = log.follow()
        assert not cursor.pending or log.generation == 0
        log.ingest([hire("e1", "p1", "d1", 2)])
        assert cursor.pending
        first = cursor.advance()
        assert len(first.add) == 1 and not first.remove
        assert cursor.advance().is_empty
        log.ingest([ev("e2", "p1", "updated", 6, {"dept": "d2"})])
        peeked = cursor.peek()
        assert cursor.pending  # peek does not commit
        assert cursor.advance() == peeked

    def test_follow_iter_drains(self):
        log = EventLog(self.MAPPING)
        cursor = log.follow()
        log.ingest([hire("e1", "p1", "d1", 2)])
        assert len(list(cursor)) == 1
        assert list(cursor) == []

    def test_pickle_round_trip(self):
        log = EventLog(self.MAPPING)
        log.ingest([hire("e1", "p1", "d1", 2)])
        log.snapshot_at(None)  # populate the cache
        clone = pickle.loads(pickle.dumps(log))
        assert clone.generation == log.generation
        assert set(clone.snapshot_at(None).facts()) == set(
            log.snapshot_at(None).facts()
        )
