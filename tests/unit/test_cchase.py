"""Unit tests for the c-chase (Definition 16)."""

import pytest

from repro.concrete import ConcreteInstance, c_chase, concrete_fact
from repro.dependencies import DataExchangeSetting
from repro.errors import ChaseFailureError
from repro.relational import Constant, Schema
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, interval


def copy_setting() -> DataExchangeSetting:
    return DataExchangeSetting.create(
        Schema.of(R=("A", "B")),
        Schema.of(T=("A", "B")),
        st_tgds=["R(x, y) -> T(x, y)"],
    )


class TestStPhase:
    def test_copy_preserves_stamps(self):
        source = ConcreteInstance(
            [
                concrete_fact("R", "a", "b", interval=Interval(1, 5)),
                concrete_fact("R", "c", "d", interval=interval(7)),
            ]
        )
        result = c_chase(source, copy_setting())
        assert result.succeeded
        assert concrete_fact("T", "a", "b", interval=Interval(1, 5)) in result.target
        assert concrete_fact("T", "c", "d", interval=interval(7)) in result.target

    def test_fresh_nulls_annotated_with_match_stamp(self):
        setting = DataExchangeSetting.create(
            Schema.of(R=("A",)),
            Schema.of(T=("A", "B")),
            st_tgds=["R(x) -> EXISTS y . T(x, y)"],
        )
        source = ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(3, 8))]
        )
        result = c_chase(source, setting)
        (item,) = result.target.facts()
        null = item.data[1]
        assert isinstance(null, AnnotatedNull)
        assert null.annotation == Interval(3, 8)

    def test_standard_variant_avoids_redundant_null_facts(self, setting, source):
        result = c_chase(source, setting, variant="standard")
        # Where σ2 provided the salary, σ1 must not leave a null twin.
        ada_2013 = [
            f
            for f in result.target.facts_of("Emp")
            if f.data[0] == Constant("Ada") and 2013 in f.interval
        ]
        assert len(ada_2013) == 1
        assert ada_2013[0].data[2] == Constant("18k")

    def test_oblivious_variant_leaves_more_facts(self):
        # Two R-facts with the same key: the standard variant fires the
        # existential tgd once per key, the oblivious one per match.
        setting = DataExchangeSetting.create(
            Schema.of(R=("A", "B")),
            Schema.of(T=("A", "Z")),
            st_tgds=["R(x, y) -> EXISTS z . T(x, z)"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("R", "a", "b", interval=Interval(0, 5)),
                concrete_fact("R", "a", "c", interval=Interval(0, 5)),
            ]
        )
        standard = c_chase(source, setting, variant="standard")
        oblivious = c_chase(source, setting, variant="oblivious")
        assert len(standard.target) == 1
        assert len(oblivious.target) == 2

    def test_normalized_source_retained(self, setting, source):
        result = c_chase(source, setting)
        assert len(result.normalized_source) == 9  # Figure 5

    def test_empty_source(self, setting):
        result = c_chase(ConcreteInstance(), setting)
        assert result.succeeded and len(result.target) == 0


class TestEgdPhase:
    def test_null_to_constant(self, setting, source):
        result = c_chase(source, setting)
        # Bob's salary over [2015, 2018) was a null from σ1 firings; the
        # egd replaced it with 13k.
        bob_rows = sorted(
            (
                f
                for f in result.target.facts_of("Emp")
                if f.data[0] == Constant("Bob")
            ),
            key=lambda f: f.sort_key(),
        )
        salaries = {str(f.data[2]) for f in bob_rows if 2015 in f.interval}
        assert salaries == {"13k"}

    def test_null_to_null_merge(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X",), Q=("X",)),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x) -> EXISTS y . T(x, y)", "Q(x) -> EXISTS y . T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", interval=Interval(0, 4)),
                concrete_fact("Q", "a", interval=Interval(0, 4)),
            ]
        )
        result = c_chase(source, setting)
        assert result.succeeded
        assert len(result.target) == 1
        assert len(result.target.nulls()) == 1

    def test_partial_overlap_merges_only_common_fragment(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X",), Q=("X",)),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x) -> EXISTS y . T(x, y)", "Q(x) -> EXISTS y . T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", interval=Interval(0, 6)),
                concrete_fact("Q", "a", interval=Interval(4, 9)),
            ]
        )
        result = c_chase(source, setting)
        assert result.succeeded
        # Fragments: [0,4) null from P only; [4,6) merged; [6,9) null from Q.
        stamps = sorted(str(f.interval) for f in result.target.facts())
        assert stamps == ["[0, 4)", "[4, 6)", "[6, 9)"]
        nulls = result.target.nulls()
        assert len(nulls) == 3

    def test_constant_clash_fails_with_overlap(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 6)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        result = c_chase(source, setting)
        assert result.failed
        with pytest.raises(ChaseFailureError):
            result.unwrap()

    def test_no_clash_when_disjoint_in_time(self):
        # The same data conflict is harmless when the stamps never overlap:
        # the egd is implicitly non-temporal and only sees single stamps.
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", "1", interval=Interval(0, 4)),
                concrete_fact("P", "a", "2", interval=Interval(4, 9)),
            ]
        )
        result = c_chase(source, setting)
        assert result.succeeded
        assert len(result.target) == 2


class TestOptions:
    def test_naive_normalization_same_semantics(self, setting, source):
        from repro.abstract_view import homomorphically_equivalent, semantics

        smart = c_chase(source, setting, normalization="conjunction")
        naive = c_chase(source, setting, normalization="naive")
        assert smart.succeeded and naive.succeeded
        assert homomorphically_equivalent(
            semantics(smart.target), semantics(naive.target)
        )

    def test_coalesce_result_option(self):
        source = ConcreteInstance(
            [
                concrete_fact("R", "a", "b", interval=Interval(0, 3)),
                concrete_fact("R", "a", "b", interval=Interval(3, 7)),
            ]
        )
        # Not coalesced on purpose; the copy tgd reproduces both stamps.
        raw = c_chase(source, copy_setting(), coalesce_result=False)
        merged = c_chase(source, copy_setting(), coalesce_result=True)
        assert len(raw.target) == 2
        assert len(merged.target) == 1

    def test_trace_records_steps(self, setting, source):
        result = c_chase(source, setting)
        assert len(result.trace.tgd_steps) >= 5
        assert len(result.trace.egd_steps) >= 2
        assert result.trace.failure is None

    def test_pre_egd_target_is_normalized_wrt_egds(self, setting, source):
        from repro.concrete import is_normalized

        result = c_chase(source, setting)
        assert is_normalized(
            result.pre_egd_target, setting.lifted_egd_lhs_conjunctions()
        )


class TestIncrementalReplay:
    def test_default_records_nothing(self, source, setting):
        result = c_chase(source, setting)
        assert result.replay_state is None
        assert result.normalization_reports is not None  # reports are free

    def test_true_records_state(self, source, setting):
        result = c_chase(source, setting, incremental=True)
        assert result.replay_state is not None
        assert result.replay_state.source is not None
        assert result.replay_state.target is not None

    def test_naive_normalization_has_no_reports(self, source, setting):
        result = c_chase(source, setting, normalization="naive", incremental=True)
        assert result.normalization_reports is None
        assert result.replay_state is not None
        assert result.replay_state.source is None

    def test_replay_from_result_is_byte_identical(self, source, setting):
        first = c_chase(source, setting, incremental=True)
        replayed = c_chase(source, setting, incremental=first)
        fresh = c_chase(source, setting)
        assert replayed.target == fresh.target
        assert tuple(replayed.target) == tuple(fresh.target)
        assert len(replayed.trace) == len(fresh.trace)
        source_report, target_report = replayed.normalization_reports
        assert source_report.groups_replayed == source_report.groups
        assert target_report.groups_replayed == target_report.groups

    def test_replay_from_state_object(self, source, setting):
        first = c_chase(source, setting, incremental=True)
        replayed = c_chase(source, setting, incremental=first.replay_state)
        assert replayed.target == c_chase(source, setting).target

    def test_churned_source_stays_identical_to_scratch(self, setting):
        from repro.workloads import overlapping_salary_history

        base = overlapping_salary_history(people=3, spans=8)
        churned = overlapping_salary_history(people=3, spans=8, churn=3)
        first = c_chase(base.instance, setting, incremental=True)
        incremental = c_chase(churned.instance, setting, incremental=first)
        fresh = c_chase(churned.instance, setting)
        assert incremental.target == fresh.target
        assert tuple(incremental.target) == tuple(fresh.target)
        source_report, _ = incremental.normalization_reports
        assert source_report.groups_replayed == 2  # persons 1 and 2

    def test_state_pickles(self, source, setting):
        import pickle

        first = c_chase(source, setting, incremental=True)
        state = pickle.loads(pickle.dumps(first.replay_state))
        replayed = c_chase(source, setting, incremental=state)
        assert replayed.target == c_chase(source, setting).target

    def test_replay_survives_hash_seed_change(self, tmp_path):
        # Cross-process --norm-log chains must replay even though cached
        # hashes are PYTHONHASHSEED-salted (Infinity hashes as a string):
        # record under one fixed seed, replay under another, and demand
        # every group — including the unbounded-interval one — replays.
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            """
            import pickle, sys
            from repro.concrete import ConcreteInstance, c_chase, concrete_fact
            from repro.temporal import interval
            from repro.workloads import employment_setting

            source = ConcreteInstance(
                [
                    concrete_fact("E", "ada", "co1", interval=interval(3)),
                    concrete_fact("S", "ada", "18k", interval=interval(1, 5)),
                    concrete_fact("E", "bob", "co2", interval=interval(0, 9)),
                    concrete_fact("S", "bob", "13k", interval=interval(2, 6)),
                ]
            )
            path, mode = sys.argv[1], sys.argv[2]
            if mode == "record":
                result = c_chase(source, employment_setting(), incremental=True)
                with open(path, "wb") as fh:
                    pickle.dump(result.replay_state, fh)
            else:
                with open(path, "rb") as fh:
                    state = pickle.load(fh)
                result = c_chase(source, employment_setting(), incremental=state)
                report, _ = result.normalization_reports
                assert report.groups, "expected at least one group"
                assert report.groups_replayed == report.groups, (
                    report.groups_replayed,
                    report.groups,
                )
            """
        )
        log = tmp_path / "state.pkl"
        env = dict(os.environ, PYTHONPATH="src")
        for seed, mode in (("101", "record"), ("202", "replay")):
            env["PYTHONHASHSEED"] = seed
            proc = subprocess.run(
                [sys.executable, "-c", script, str(log), mode],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            )
            assert proc.returncode == 0, (mode, proc.stderr)
