"""Unit tests for s-t tgds, egds and data exchange settings."""

import pytest

from repro.errors import FormulaError, SchemaError
from repro.dependencies import EGD, DataExchangeSetting, SourceToTargetTGD
from repro.relational import Schema, Variable


class TestSourceToTargetTGD:
    def test_parse_and_structure(self):
        tgd = SourceToTargetTGD.parse("E(n, c) -> EXISTS s . Emp(n, c, s)")
        assert tgd.universal_variables == (Variable("n"), Variable("c"))
        assert tgd.existential_variables == (Variable("s"),)
        assert tgd.exported_variables == (Variable("n"), Variable("c"))

    def test_full_export(self):
        tgd = SourceToTargetTGD.parse("E(n, c) & S(n, s) -> Emp(n, c, s)")
        assert tgd.existential_variables == ()
        assert set(tgd.exported_variables) == {
            Variable("n"),
            Variable("c"),
            Variable("s"),
        }

    def test_unsafe_rhs_variable_rejected(self):
        # z occurs neither universally nor existentially.
        with pytest.raises(FormulaError):
            SourceToTargetTGD.parse("E(n) -> EXISTS s . T(n, s, z)")
        # ... but implicit existential inference accepts it when unclaimed.
        tgd = SourceToTargetTGD.parse("E(n) -> T(n, s, z)")
        assert set(tgd.existential_variables) == {Variable("s"), Variable("z")}

    def test_existential_overlapping_lhs_rejected(self):
        with pytest.raises(FormulaError):
            SourceToTargetTGD.parse("E(n) -> EXISTS n . T(n)")

    def test_declared_existential_missing_from_rhs_rejected(self):
        with pytest.raises(FormulaError):
            SourceToTargetTGD.parse("E(n) -> EXISTS s . T(n)")

    def test_parse_egd_shape_rejected(self):
        with pytest.raises(FormulaError):
            SourceToTargetTGD.parse("E(n, m) -> n = m")

    def test_lift_lhs_shares_t(self):
        tgd = SourceToTargetTGD.parse("E(n, c) & S(n, s) -> Emp(n, c, s)")
        lifted = tgd.lift_lhs()
        assert lifted.is_shared
        assert len(lifted) == 2

    def test_validate_against_schemas(self):
        tgd = SourceToTargetTGD.parse("E(n, c) -> EXISTS s . Emp(n, c, s)")
        tgd.validate_against(
            Schema.of(E=("Name", "Company")),
            Schema.of(Emp=("Name", "Company", "Salary")),
        )
        with pytest.raises(SchemaError):
            tgd.validate_against(
                Schema.of(E=("Name",)),  # wrong arity
                Schema.of(Emp=("Name", "Company", "Salary")),
            )

    def test_str_shows_quantifier(self):
        tgd = SourceToTargetTGD.parse("E(n, c) -> EXISTS s . Emp(n, c, s)")
        assert "∃s" in str(tgd)


class TestEGD:
    def test_parse(self):
        egd = EGD.parse("Emp(n, c, s) & Emp(n, c, s2) -> s = s2")
        assert egd.left_variable == Variable("s")
        assert egd.right_variable == Variable("s2")

    def test_equated_variables_must_occur(self):
        with pytest.raises(FormulaError):
            EGD.parse("Emp(n, c, s) -> s = z")

    def test_self_equation_rejected(self):
        with pytest.raises(FormulaError):
            EGD.parse("Emp(n, c, s) -> s = s")

    def test_parse_tgd_shape_rejected(self):
        with pytest.raises(FormulaError):
            EGD.parse("E(n) -> T(n)")

    def test_validate_against_target_schema(self):
        egd = EGD.parse("Emp(n, c, s) & Emp(n, c, s2) -> s = s2")
        egd.validate_against(Schema.of(Emp=("N", "C", "S")))
        with pytest.raises(SchemaError):
            egd.validate_against(Schema.of(Emp=("N", "C")))


class TestDataExchangeSetting:
    def test_create_parses_strings(self):
        setting = DataExchangeSetting.create(
            Schema.of(E=("N", "C")),
            Schema.of(T=("N", "C")),
            st_tgds=["E(n, c) -> T(n, c)"],
            egds=["T(n, c) & T(n, c2) -> c = c2"],
        )
        assert len(setting.st_tgds) == 1
        assert len(setting.egds) == 1
        assert len(setting.dependencies) == 2

    def test_schemas_must_be_disjoint(self):
        with pytest.raises(SchemaError, match="disjoint"):
            DataExchangeSetting.create(Schema.of(E=("A",)), Schema.of(E=("A",)))

    def test_dependencies_validated_on_construction(self):
        with pytest.raises(SchemaError):
            DataExchangeSetting.create(
                Schema.of(E=("N",)),
                Schema.of(T=("N",)),
                st_tgds=["E(n, c) -> T(n)"],  # E arity mismatch
            )

    def test_lifted_conjunctions(self, setting):
        st = setting.lifted_st_lhs_conjunctions()
        eg = setting.lifted_egd_lhs_conjunctions()
        assert len(st) == 2 and len(eg) == 1
        assert all(conj.is_shared for conj in st + eg)

    def test_lifted_schemas_gain_temporal_attribute(self, setting):
        assert setting.lifted_source_schema()["E"].arity == 3
        assert setting.lifted_target_schema()["Emp"].arity == 4

    def test_target_relations_used(self, setting):
        assert setting.target_relations_used() == {"Emp"}

    def test_describe_mentions_everything(self, setting):
        text = setting.describe()
        assert "σ1" in text and "ε1" in text and "Emp" in text
