"""Unit tests for the classical snapshot chase."""

import pytest

from repro.chase import NullFactory, chase_snapshot, snapshot_satisfies
from repro.dependencies import DataExchangeSetting
from repro.errors import ChaseFailureError
from repro.relational import Constant, Instance, LabeledNull, Schema, fact


@pytest.fixture
def snapshot_2013() -> Instance:
    """The 2013 snapshot of Figure 1."""
    return Instance(
        [
            fact("E", "Ada", "IBM"),
            fact("S", "Ada", "18k"),
            fact("E", "Bob", "IBM"),
        ]
    )


class TestTgdPhase:
    def test_copies_and_joins(self, setting, snapshot_2013):
        result = chase_snapshot(snapshot_2013, setting)
        assert result.succeeded
        # Figure 3 at 2013: Emp(Ada, IBM, 18k), Emp(Bob, IBM, N').
        assert fact("Emp", "Ada", "IBM", "18k") in result.target
        bob_rows = [
            f for f in result.target.facts_of("Emp") if f.args[0] == Constant("Bob")
        ]
        assert len(bob_rows) == 1
        assert isinstance(bob_rows[0].args[2], LabeledNull)
        assert len(result.target) == 2

    def test_standard_variant_skips_satisfied_tgds(self, setting):
        snapshot = Instance([fact("E", "Ada", "IBM"), fact("S", "Ada", "18k")])
        result = chase_snapshot(snapshot, setting)
        # σ2 fires producing the joined fact; whether σ1 fired first or not,
        # the egd collapses to a single fact with NO null.
        assert result.target == Instance([fact("Emp", "Ada", "IBM", "18k")])

    def test_oblivious_variant_fires_always(self):
        # Two R-facts with the same key: standard fires the existential
        # tgd once for the key, oblivious fires once per homomorphism.
        setting = DataExchangeSetting.create(
            Schema.of(R=("A", "B")),
            Schema.of(T=("A", "Z")),
            st_tgds=["R(x, y) -> EXISTS z . T(x, z)"],
        )
        snapshot = Instance([fact("R", "a", "b"), fact("R", "a", "c")])
        standard = chase_snapshot(snapshot, setting, variant="standard")
        oblivious = chase_snapshot(snapshot, setting, variant="oblivious")
        assert len(standard.target) == 1
        assert len(oblivious.target) == 2

    def test_fresh_nulls_distinct_per_firing(self, setting):
        snapshot = Instance([fact("E", "Ada", "IBM"), fact("E", "Bob", "IBM")])
        result = chase_snapshot(snapshot, setting)
        nulls = result.target.nulls()
        assert len(nulls) == 2  # one unknown salary per person

    def test_null_factory_controls_names(self, setting):
        snapshot = Instance([fact("E", "Ada", "IBM")])
        result = chase_snapshot(
            snapshot, setting, null_factory=NullFactory(prefix="X")
        )
        (null,) = result.target.nulls()
        assert null.name == "X1"

    def test_empty_source_chases_to_empty(self, setting):
        result = chase_snapshot(Instance(), setting)
        assert result.succeeded and len(result.target) == 0


class TestEgdPhase:
    def test_null_replaced_by_constant(self, setting, snapshot_2013):
        result = chase_snapshot(snapshot_2013, setting)
        # Ada's salary null (from σ1) must be replaced by 18k (from σ2).
        ada_rows = [
            f for f in result.target.facts_of("Emp") if f.args[0] == Constant("Ada")
        ]
        assert ada_rows == [fact("Emp", "Ada", "IBM", "18k")]

    def test_null_merging(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X",), Q=("X",)),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x) -> EXISTS y . T(x, y)", "Q(x) -> EXISTS y . T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = Instance([fact("P", "a"), fact("Q", "a")])
        result = chase_snapshot(source, setting)
        assert result.succeeded
        assert len(result.target) == 1  # the two nulls were merged
        assert len(result.target.nulls()) == 1

    def test_constant_clash_fails(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = Instance([fact("P", "a", "1"), fact("P", "a", "2")])
        result = chase_snapshot(source, setting)
        assert result.failed
        assert result.failure is not None
        assert {result.failure.left, result.failure.right} == {
            Constant("1"),
            Constant("2"),
        }

    def test_unwrap_raises_on_failure(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = Instance([fact("P", "a", "1"), fact("P", "a", "2")])
        with pytest.raises(ChaseFailureError):
            chase_snapshot(source, setting).unwrap()

    def test_egd_cascade(self):
        # Equating via one egd enables another equation.
        setting = DataExchangeSetting.create(
            Schema.of(P=("X",)),
            Schema.of(T=("X", "Y", "Z")),
            st_tgds=["P(x) -> EXISTS y, z . T(x, y, z)"],
            egds=[
                "T(x, y, z) & T(x, y2, z2) -> y = y2",
                "T(x, y, z) & T(x, y, z2) -> z = z2",
            ],
        )
        source = Instance([fact("P", "a"), fact("P", "a")])
        result = chase_snapshot(source, setting)
        assert result.succeeded


class TestTrace:
    def test_steps_recorded(self, setting, snapshot_2013):
        result = chase_snapshot(snapshot_2013, setting)
        assert len(result.trace.tgd_steps) >= 2
        assert len(result.trace.egd_steps) >= 1
        assert result.trace.failure is None
        assert result.trace.facts_added() >= 2

    def test_failure_recorded_in_trace(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = Instance([fact("P", "a", "1"), fact("P", "a", "2")])
        result = chase_snapshot(source, setting)
        assert result.trace.failure is not None
        assert "FAILED" in str(result.trace)


class TestSatisfaction:
    def test_chase_result_is_solution(self, setting, snapshot_2013):
        result = chase_snapshot(snapshot_2013, setting)
        assert snapshot_satisfies(snapshot_2013, result.target, setting)

    def test_empty_target_not_solution(self, setting, snapshot_2013):
        assert not snapshot_satisfies(snapshot_2013, Instance(), setting)

    def test_egd_violation_detected(self, setting, snapshot_2013):
        bad = Instance(
            [
                fact("Emp", "Ada", "IBM", "18k"),
                fact("Emp", "Ada", "IBM", "99k"),
                fact("Emp", "Bob", "IBM", "10k"),
            ]
        )
        assert not snapshot_satisfies(snapshot_2013, bad, setting)

    def test_larger_solution_still_satisfies(self, setting, snapshot_2013):
        result = chase_snapshot(snapshot_2013, setting)
        bigger = result.target.copy()
        bigger.add(fact("Emp", "Zoe", "SUN", "50k"))
        assert snapshot_satisfies(snapshot_2013, bigger, setting)
