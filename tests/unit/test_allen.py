"""Unit tests for Allen's interval relations on half-open intervals."""

import pytest

from repro.temporal import Interval, interval
from repro.temporal.allen import (
    AllenRelation,
    allen_relation,
    requires_fragmentation,
)


class TestBasicRelations:
    @pytest.mark.parametrize(
        "first,second,expected",
        [
            (Interval(1, 3), Interval(5, 8), AllenRelation.BEFORE),
            (Interval(1, 3), Interval(3, 8), AllenRelation.MEETS),
            (Interval(1, 5), Interval(3, 8), AllenRelation.OVERLAPS),
            (Interval(1, 3), Interval(1, 8), AllenRelation.STARTS),
            (Interval(3, 5), Interval(1, 8), AllenRelation.DURING),
            (Interval(5, 8), Interval(1, 8), AllenRelation.FINISHES),
            (Interval(1, 8), Interval(1, 8), AllenRelation.EQUALS),
            (Interval(1, 8), Interval(5, 8), AllenRelation.FINISHED_BY),
            (Interval(1, 8), Interval(3, 5), AllenRelation.CONTAINS),
            (Interval(1, 8), Interval(1, 3), AllenRelation.STARTED_BY),
            (Interval(3, 8), Interval(1, 5), AllenRelation.OVERLAPPED_BY),
            (Interval(3, 8), Interval(1, 3), AllenRelation.MET_BY),
            (Interval(5, 8), Interval(1, 3), AllenRelation.AFTER),
        ],
    )
    def test_all_thirteen(self, first, second, expected):
        assert allen_relation(first, second) is expected

    def test_exhaustive_inverse_consistency(self):
        stamps = [
            Interval(1, 3),
            Interval(1, 8),
            Interval(3, 5),
            Interval(3, 8),
            Interval(5, 8),
            interval(3),
            interval(6),
        ]
        for a in stamps:
            for b in stamps:
                assert allen_relation(a, b).inverse is allen_relation(b, a)

    def test_unbounded_equals(self):
        assert allen_relation(interval(3), interval(3)) is AllenRelation.EQUALS

    def test_unbounded_starts(self):
        assert allen_relation(Interval(3, 9), interval(3)) is AllenRelation.STARTS
        assert allen_relation(interval(3), Interval(3, 9)) is AllenRelation.STARTED_BY

    def test_unbounded_finishes(self):
        assert allen_relation(interval(5), interval(2)) is AllenRelation.FINISHES


class TestSharesPoints:
    def test_disjoint_relations_share_nothing(self):
        for rel in (
            AllenRelation.BEFORE,
            AllenRelation.AFTER,
            AllenRelation.MEETS,
            AllenRelation.MET_BY,
        ):
            assert not rel.shares_points

    def test_overlap_relations_share(self):
        assert AllenRelation.OVERLAPS.shares_points
        assert AllenRelation.EQUALS.shares_points
        assert AllenRelation.DURING.shares_points

    def test_agreement_with_interval_overlap(self):
        stamps = [Interval(1, 4), Interval(2, 6), Interval(4, 7), interval(5)]
        for a in stamps:
            for b in stamps:
                assert allen_relation(a, b).shares_points == a.overlaps(b)


class TestRequiresFragmentation:
    def test_equal_stamps_do_not_fragment(self):
        assert not requires_fragmentation(Interval(1, 5), Interval(1, 5))

    def test_disjoint_stamps_do_not_fragment(self):
        assert not requires_fragmentation(Interval(1, 3), Interval(5, 8))
        assert not requires_fragmentation(Interval(1, 3), Interval(3, 8))

    def test_example12_overlap_cases_fragment(self):
        # The four proper-overlap orderings of Example 12.
        assert requires_fragmentation(Interval(1, 5), Interval(3, 8))  # s1<s2<e1<e2
        assert requires_fragmentation(Interval(3, 8), Interval(1, 5))  # s2<s1<e2<e1
        assert requires_fragmentation(Interval(1, 8), Interval(3, 5))  # s1<s2<e2<e1
        assert requires_fragmentation(Interval(3, 5), Interval(1, 8))  # s2<s1<e1<e2

    def test_shared_endpoint_overlaps_fragment(self):
        assert requires_fragmentation(Interval(1, 5), Interval(1, 8))
        assert requires_fragmentation(Interval(1, 8), Interval(5, 8))
