"""Unit tests for atoms, conjunctions and temporal conjunctions."""

import pytest

from repro.errors import FormulaError, SchemaError
from repro.relational import (
    Atom,
    Conjunction,
    Constant,
    LabeledNull,
    Schema,
    TemporalConjunction,
    Variable,
)


def atom(rel: str, *names: str) -> Atom:
    args = tuple(
        Constant(n[1:-1]) if n.startswith("'") else Variable(n) for n in names
    )
    return Atom(rel, args)


class TestAtom:
    def test_variables_and_constants(self):
        a = atom("Emp", "n", "'IBM'", "s")
        assert a.variables() == (Variable("n"), Variable("s"))
        assert a.constants() == (Constant("IBM"),)
        assert a.arity == 3

    def test_ground_terms_rejected(self):
        with pytest.raises(FormulaError):
            Atom("R", (LabeledNull("N"),))

    def test_substitute_partial(self):
        a = atom("E", "n", "c")
        replaced = a.substitute({Variable("n"): Constant("Ada")})
        assert replaced.args == (Constant("Ada"), Variable("c"))

    def test_instantiate_total(self):
        a = atom("E", "n", "c")
        result = a.instantiate(
            {Variable("n"): Constant("Ada"), Variable("c"): Constant("IBM")}
        )
        assert result.relation == "E"
        assert result.args == (Constant("Ada"), Constant("IBM"))

    def test_instantiate_missing_variable_raises(self):
        with pytest.raises(FormulaError, match="unassigned"):
            atom("E", "n", "c").instantiate({Variable("n"): Constant("Ada")})

    def test_instantiate_non_ground_value_raises(self):
        with pytest.raises(FormulaError):
            atom("E", "n").instantiate({Variable("n"): Variable("m")})

    def test_validate_against_schema(self):
        schema = Schema.of(E=("A", "B"))
        atom("E", "x", "y").validate_against(schema)
        with pytest.raises(SchemaError):
            atom("E", "x").validate_against(schema)


class TestConjunction:
    def test_requires_atoms(self):
        with pytest.raises(FormulaError):
            Conjunction(())

    def test_len_is_atom_count(self):
        conj = Conjunction((atom("E", "n", "c"), atom("S", "n", "s")))
        assert len(conj) == 2

    def test_variables_first_occurrence_no_duplicates(self):
        conj = Conjunction((atom("E", "n", "c"), atom("S", "n", "s")))
        assert conj.variables() == (Variable("n"), Variable("c"), Variable("s"))

    def test_relations(self):
        conj = Conjunction((atom("E", "n"), atom("S", "n")))
        assert conj.relations() == ("E", "S")

    def test_instantiate(self):
        conj = Conjunction((atom("E", "n"), atom("S", "n")))
        facts = conj.instantiate({Variable("n"): Constant("Ada")})
        assert [f.relation for f in facts] == ["E", "S"]

    def test_substitute(self):
        conj = Conjunction((atom("E", "n", "c"),))
        replaced = conj.substitute({Variable("c"): Constant("IBM")})
        assert replaced.atoms[0].constants() == (Constant("IBM"),)


class TestTemporalConjunction:
    def test_shared_form(self):
        conj = TemporalConjunction.shared([atom("E", "n"), atom("S", "n")])
        assert conj.is_shared
        assert conj.shared_variable == Variable("t")

    def test_temporal_variable_count_must_match(self):
        with pytest.raises(FormulaError):
            TemporalConjunction((atom("E", "n"),), (Variable("t"), Variable("u")))

    def test_default_temporal_variable_avoids_data_clash(self):
        # A formula using t as data still lifts: the default shared
        # variable sidesteps to the first free name.
        conj = TemporalConjunction.shared([atom("E", "t")])
        assert conj.is_shared
        assert conj.shared_variable == Variable("t0")
        crowded = TemporalConjunction.shared([atom("E", "t", "t0", "t1")])
        assert crowded.shared_variable == Variable("t2")

    def test_explicit_temporal_variable_clash_with_data_rejected(self):
        with pytest.raises(FormulaError):
            TemporalConjunction.shared([atom("E", "t")], Variable("t"))

    def test_normalized_decouples_variables(self):
        # N(Φ+) of Example 9: R+(x,t) ∧ S+(y,t) becomes R+(x,t1) ∧ S+(y,t2).
        shared = TemporalConjunction.shared([atom("R", "x"), atom("S", "y")])
        decoupled = shared.normalized()
        assert len(set(decoupled.temporal_variables)) == 2
        assert not decoupled.is_shared
        assert decoupled.atoms == shared.atoms

    def test_normalized_avoids_data_variable_names(self):
        shared = TemporalConjunction.shared([atom("R", "t_1", "t_2")])
        decoupled = shared.normalized()
        assert decoupled.temporal_variables[0].name not in {"t_1", "t_2"}

    def test_shared_variable_on_decoupled_raises(self):
        decoupled = TemporalConjunction.shared(
            [atom("R", "x"), atom("S", "y")]
        ).normalized()
        with pytest.raises(FormulaError):
            decoupled.shared_variable  # noqa: B018

    def test_data_conjunction_drops_time(self):
        shared = TemporalConjunction.shared([atom("R", "x")])
        assert isinstance(shared.data_conjunction(), Conjunction)
        assert shared.data_conjunction().atoms == shared.atoms

    def test_variables_include_temporal_last(self):
        shared = TemporalConjunction.shared([atom("R", "x"), atom("S", "y")])
        assert shared.variables() == (
            Variable("x"),
            Variable("y"),
            Variable("t"),
        )

    def test_iteration_pairs_atoms_with_temporal_vars(self):
        shared = TemporalConjunction.shared([atom("R", "x")])
        pairs = list(shared)
        assert pairs == [(atom("R", "x"), Variable("t"))]

    def test_str_renders_lifted_relations(self):
        shared = TemporalConjunction.shared([atom("R", "x")])
        assert "R+" in str(shared)
