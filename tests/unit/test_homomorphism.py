"""Unit tests for homomorphism search (formula→instance, instance→instance)."""

import pytest

from repro.relational import (
    Constant,
    Instance,
    LabeledNull,
    Variable,
    fact,
    parse_conjunction,
)
from repro.relational.homomorphism import (
    find_homomorphism,
    find_homomorphisms,
    find_homomorphisms_with_images,
    find_instance_homomorphism,
    has_homomorphism,
    has_instance_homomorphism,
    is_homomorphism,
)


@pytest.fixture
def employment() -> Instance:
    return Instance(
        [
            fact("E", "Ada", "IBM"),
            fact("E", "Bob", "IBM"),
            fact("E", "Cyd", "HP"),
            fact("S", "Ada", "18k"),
            fact("S", "Cyd", "21k"),
        ]
    )


class TestFormulaHomomorphisms:
    def test_single_atom_all_matches(self, employment):
        results = list(find_homomorphisms(parse_conjunction("E(n, c)"), employment))
        assert len(results) == 3

    def test_join_via_shared_variable(self, employment):
        results = list(
            find_homomorphisms(parse_conjunction("E(n, c) & S(n, s)"), employment)
        )
        names = {h[Variable("n")].value for h in results}
        assert names == {"Ada", "Cyd"}  # Bob has no salary

    def test_constants_filter(self, employment):
        results = list(
            find_homomorphisms(parse_conjunction("E(n, 'IBM')"), employment)
        )
        assert {h[Variable("n")].value for h in results} == {"Ada", "Bob"}

    def test_repeated_variable_within_atom(self):
        inst = Instance([fact("R", "a", "a"), fact("R", "a", "b")])
        results = list(find_homomorphisms(parse_conjunction("R(x, x)"), inst))
        assert len(results) == 1
        assert results[0][Variable("x")] == Constant("a")

    def test_initial_bindings_respected(self, employment):
        results = list(
            find_homomorphisms(
                parse_conjunction("E(n, c)"),
                employment,
                initial={Variable("c"): Constant("HP")},
            )
        )
        assert len(results) == 1
        assert results[0][Variable("n")] == Constant("Cyd")

    def test_no_match(self, employment):
        assert not has_homomorphism(parse_conjunction("E(n, 'SUN')"), employment)
        assert find_homomorphism(parse_conjunction("E(n, 'SUN')"), employment) is None

    def test_nulls_matchable_by_variables(self):
        null = LabeledNull("N")
        inst = Instance([fact("Emp", "Ada", null)])
        h = find_homomorphism(parse_conjunction("Emp(n, s)"), inst)
        assert h is not None
        assert h[Variable("s")] == null

    def test_images_align_with_atoms(self, employment):
        conj = parse_conjunction("S(n, s) & E(n, c)")
        for assignment, images in find_homomorphisms_with_images(conj, employment):
            assert images[0].relation == "S"
            assert images[1].relation == "E"
            assert images[0].args[0] == assignment[Variable("n")]

    def test_two_atoms_may_map_to_same_fact(self):
        inst = Instance([fact("R", "a", "b")])
        conj = parse_conjunction("R(x, y) & R(x2, y2)")
        results = list(find_homomorphisms_with_images(conj, inst))
        assert len(results) == 1
        assignment, images = results[0]
        assert images[0] == images[1]

    def test_deterministic_enumeration_order(self, employment):
        conj = parse_conjunction("E(n, c)")
        first = [h[Variable("n")] for h in find_homomorphisms(conj, employment)]
        second = [h[Variable("n")] for h in find_homomorphisms(conj, employment)]
        assert first == second

    def test_cartesian_product_counts(self):
        inst = Instance([fact("A", i) for i in range(3)] + [fact("B", i) for i in range(4)])
        conj = parse_conjunction("A(x) & B(y)")
        assert len(list(find_homomorphisms(conj, inst))) == 12


class TestInstanceHomomorphisms:
    def test_constants_map_identically(self):
        src = Instance([fact("R", "a")])
        tgt = Instance([fact("R", "b")])
        assert not has_instance_homomorphism(src, tgt)

    def test_null_maps_to_constant(self):
        null = LabeledNull("N")
        src = Instance([fact("R", "a", null)])
        tgt = Instance([fact("R", "a", "b")])
        h = find_instance_homomorphism(src, tgt)
        assert h is not None
        assert h[null] == Constant("b")

    def test_null_consistency_across_facts(self):
        null = LabeledNull("N")
        src = Instance([fact("R", null), fact("Q", null)])
        tgt = Instance([fact("R", "a"), fact("Q", "b")])
        assert not has_instance_homomorphism(src, tgt)
        tgt2 = Instance([fact("R", "a"), fact("Q", "a")])
        assert has_instance_homomorphism(src, tgt2)

    def test_fixed_bindings(self):
        null = LabeledNull("N")
        src = Instance([fact("R", null)])
        tgt = Instance([fact("R", "a"), fact("R", "b")])
        h = find_instance_homomorphism(src, tgt, fixed={null: Constant("b")})
        assert h is not None and h[null] == Constant("b")

    def test_frozen_nulls_must_map_to_themselves(self):
        null = LabeledNull("N")
        src = Instance([fact("R", null)])
        tgt = Instance([fact("R", "a")])
        assert (
            find_instance_homomorphism(src, tgt, frozen_nulls=[null]) is None
        )
        tgt_with_null = Instance([fact("R", "a"), fact("R", null)])
        h = find_instance_homomorphism(src, tgt_with_null, frozen_nulls=[null])
        assert h is not None and h[null] == null

    def test_empty_source_trivially_maps(self):
        assert has_instance_homomorphism(Instance(), Instance([fact("R", "a")]))

    def test_is_homomorphism_checker(self):
        null = LabeledNull("N")
        src = Instance([fact("R", "a", null)])
        tgt = Instance([fact("R", "a", "b")])
        assert is_homomorphism({null: Constant("b")}, src, tgt)
        assert not is_homomorphism({null: Constant("z")}, src, tgt)
        assert not is_homomorphism(
            {Constant("a"): Constant("b"), null: Constant("b")}, src, tgt
        )
