"""Regression tests for the batched union-find egd resolution.

The egd phases resolve equations in rounds: all matches of the current
instance are merged through one union-find, then a single substitution
pass applies the round.  Within a round the instance still contains
terms that earlier merges already retired, so every equation must be
resolved through ``find`` before being judged — the historical bug class
is a stale representative being recorded or substituted.  The chain
tests below push ≥3 merges through one null (which later loses to a
constant) and assert the trace replays to the final instance.
"""

from repro.chase.standard import _run_egd_phase
from repro.chase.trace import ChaseTrace
from repro.concrete import ConcreteInstance, c_chase, concrete_fact
from repro.concrete.cchase import _run_egd_phase as _run_egd_phase_concrete
from repro.dependencies import DataExchangeSetting
from repro.relational import Constant, Instance, LabeledNull, Schema, fact
from repro.temporal import Interval


def chain_setting() -> DataExchangeSetting:
    return DataExchangeSetting.create(
        Schema.of(Src=("X",)),
        Schema.of(R=("X", "Y"), S=("X", "Y"), U=("X", "Y"), V=("X", "Y")),
        st_tgds=["Src(x) -> EXISTS y . R(x, y)"],
        egds=[
            "R(x, y) & R(x, y2) -> y = y2",
            "S(x, y) & S(x, y2) -> y = y2",
            "U(x, y) & U(x, y2) -> y = y2",
            "V(x, y) & V(x, y2) -> y = y2",
        ],
    )


def chain_instance() -> Instance:
    n1, n2, n3, n4 = (LabeledNull(f"N{i}") for i in range(1, 5))
    return Instance(
        [
            fact("R", "a", n1),
            fact("R", "a", n2),
            fact("S", "b", n2),
            fact("S", "b", n3),
            fact("U", "c", n3),
            fact("U", "c", n4),
            fact("V", "d", n1),
            fact("V", "d", "k"),
        ]
    )


class TestChainedMerges:
    """≥3 egd merges chained through one null, ending in a constant."""

    def test_final_instance_fully_resolved(self):
        result, failure = _run_egd_phase(
            chain_instance(), chain_setting(), ChaseTrace()
        )
        assert failure is None
        assert result == Instance(
            [
                fact("R", "a", "k"),
                fact("S", "b", "k"),
                fact("U", "c", "k"),
                fact("V", "d", "k"),
            ]
        )

    def test_steps_equate_representatives_only(self):
        trace = ChaseTrace()
        initial = chain_instance()
        result, failure = _run_egd_phase(initial, chain_setting(), trace)
        assert failure is None
        n1 = LabeledNull("N1")
        k = Constant("k")
        recorded = [(s.replaced, s.replacement) for s in trace.egd_steps]
        # N2, N3, N4 each merge into N1's class — recorded against the
        # *representative* N1, never against an already-replaced null —
        # and N1 itself finally loses to the constant.
        assert recorded == [
            (LabeledNull("N2"), n1),
            (LabeledNull("N3"), n1),
            (LabeledNull("N4"), n1),
            (n1, k),
        ]

    def test_trace_replays_to_final_instance(self):
        trace = ChaseTrace()
        initial = chain_instance()
        result, failure = _run_egd_phase(initial, chain_setting(), trace)
        assert failure is None
        replayed = initial
        for step in trace.egd_steps:
            replayed = replayed.substitute({step.replaced: step.replacement})
        assert replayed == result

    def test_no_replaced_term_survives(self):
        trace = ChaseTrace()
        result, failure = _run_egd_phase(
            chain_instance(), chain_setting(), trace
        )
        assert failure is None
        surviving = {arg for item in result.facts() for arg in item.args}
        for step in trace.egd_steps:
            assert step.replaced not in surviving


class TestChainedMergesConcrete:
    """The same chain through the c-chase egd phase (annotated nulls)."""

    @staticmethod
    def _setting() -> DataExchangeSetting:
        return chain_setting()

    @staticmethod
    def _instance() -> ConcreteInstance:
        from repro.relational.terms import AnnotatedNull

        stamp = Interval(0, 5)
        nulls = [AnnotatedNull(f"N{i}", stamp) for i in range(1, 5)]
        n1, n2, n3, n4 = nulls
        return ConcreteInstance(
            [
                concrete_fact("R", "a", n1, interval=stamp),
                concrete_fact("R", "a", n2, interval=stamp),
                concrete_fact("S", "b", n2, interval=stamp),
                concrete_fact("S", "b", n3, interval=stamp),
                concrete_fact("U", "c", n3, interval=stamp),
                concrete_fact("U", "c", n4, interval=stamp),
                concrete_fact("V", "d", n1, interval=stamp),
                concrete_fact("V", "d", "k", interval=stamp),
            ]
        )

    def test_chain_resolves_to_constant(self):
        trace = ChaseTrace()
        result, failure = _run_egd_phase_concrete(
            self._instance(), self._setting(), trace
        )
        assert failure is None
        stamp = Interval(0, 5)
        assert result == ConcreteInstance(
            [
                concrete_fact("R", "a", "k", interval=stamp),
                concrete_fact("S", "b", "k", interval=stamp),
                concrete_fact("U", "c", "k", interval=stamp),
                concrete_fact("V", "d", "k", interval=stamp),
            ]
        )
        assert len(trace.egd_steps) == 4

    def test_trace_replays_to_final_instance(self):
        trace = ChaseTrace()
        initial = self._instance()
        result, failure = _run_egd_phase_concrete(
            initial, self._setting(), trace
        )
        assert failure is None
        replayed = initial
        for step in trace.egd_steps:
            replayed = replayed.substitute({step.replaced: step.replacement})
        assert replayed == result


class TestBatchedFailureBehaviour:
    def test_merges_before_clash_are_applied(self):
        # ε1 merges a null before ε2 hits a constant/constant clash; the
        # returned instance must reflect the recorded merge, exactly as
        # the per-equation loop left it.
        setting = DataExchangeSetting.create(
            Schema.of(Src=("X",)),
            Schema.of(R=("X", "Y"), W=("X", "Y")),
            st_tgds=["Src(x) -> EXISTS y . R(x, y)"],
            egds=[
                "R(x, y) & R(x, y2) -> y = y2",
                "W(x, y) & W(x, y2) -> y = y2",
            ],
        )
        n1, n2 = LabeledNull("N1"), LabeledNull("N2")
        target = Instance(
            [
                fact("R", "a", n1),
                fact("R", "a", n2),
                fact("W", "b", "1"),
                fact("W", "b", "2"),
            ]
        )
        trace = ChaseTrace()
        result, failure = _run_egd_phase(target, setting, trace)
        assert failure is not None
        assert {str(failure.left), str(failure.right)} == {"1", "2"}
        assert len(trace.egd_steps) == 1
        assert fact("R", "a", n1) in result
        assert fact("R", "a", n2) not in result

    def test_cchase_annotation_guard(self):
        # Merging two annotated nulls with different stamps is impossible
        # on a normalized instance; the union-find now guards it.
        import pytest

        from repro.chase.union_find import (
            AnnotationMismatchError,
            TermUnionFind,
        )
        from repro.relational.terms import AnnotatedNull

        uf = TermUnionFind(check_annotations=True)
        left = AnnotatedNull("N1", Interval(0, 3))
        right = AnnotatedNull("N2", Interval(3, 6))
        with pytest.raises(AnnotationMismatchError):
            uf.union(left, right)
        # Without the flag (snapshot chase semantics) the merge is legal.
        assert TermUnionFind().union(left, right) in {left, right}

    def test_full_cchase_on_chain_scenario(self):
        # End-to-end: tgd phase produces the nulls, egd phase chains the
        # merges; same outcome via the public entry point.
        setting = DataExchangeSetting.create(
            Schema.of(P=("X",), Q=("X",)),
            Schema.of(T=("X", "Y")),
            st_tgds=[
                "P(x) -> EXISTS y . T(x, y)",
                "Q(x) -> EXISTS y . T(x, y)",
            ],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = ConcreteInstance(
            [
                concrete_fact("P", "a", interval=Interval(0, 4)),
                concrete_fact("Q", "a", interval=Interval(0, 4)),
            ]
        )
        result = c_chase(source, setting)
        assert result.succeeded
        assert len(result.target) == 1
        assert len(result.target.nulls()) == 1
