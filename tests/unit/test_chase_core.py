"""Unit tests for core computation (smallest universal solution)."""

from repro.chase import chase_snapshot, core_of, find_proper_endomorphism, is_core
from repro.dependencies import DataExchangeSetting
from repro.relational import Instance, LabeledNull, fact


def null(name: str) -> LabeledNull:
    return LabeledNull(name)


class TestProperEndomorphism:
    def test_redundant_null_fact_found(self):
        # R(a, N) folds onto R(a, b).
        inst = Instance([fact("R", "a", "b"), fact("R", "a", null("N"))])
        folding = find_proper_endomorphism(inst)
        assert folding is not None

    def test_complete_instance_has_none(self):
        inst = Instance([fact("R", "a", "b"), fact("R", "b", "c")])
        assert find_proper_endomorphism(inst) is None

    def test_necessary_null_not_folded(self):
        # Emp(Bob, IBM, N): the null is the only witness — no fold exists.
        inst = Instance([fact("Emp", "Bob", "IBM", null("N"))])
        assert find_proper_endomorphism(inst) is None

    def test_chained_nulls_fold_together(self):
        # R(N1, N2) folds onto R(a, b) only if both nulls move.
        inst = Instance([fact("R", "a", "b"), fact("R", null("N1"), null("N2"))])
        folding = find_proper_endomorphism(inst)
        assert folding is not None
        image = inst.substitute(folding)
        assert image == Instance([fact("R", "a", "b")])


class TestCoreOf:
    def test_removes_redundant_fact(self):
        inst = Instance([fact("R", "a", "b"), fact("R", "a", null("N"))])
        core = core_of(inst)
        assert core == Instance([fact("R", "a", "b")])
        assert is_core(core)

    def test_core_of_core_is_identity(self):
        inst = Instance([fact("R", "a", "b"), fact("R", "a", null("N"))])
        core = core_of(inst)
        assert core_of(core) == core

    def test_complete_instance_is_its_own_core(self):
        inst = Instance([fact("R", "a"), fact("S", "b")])
        assert core_of(inst) == inst
        assert is_core(inst)

    def test_multi_step_folding(self):
        inst = Instance(
            [
                fact("R", "a", "b"),
                fact("R", "a", null("N1")),
                fact("R", null("N2"), "b"),
            ]
        )
        core = core_of(inst)
        assert core == Instance([fact("R", "a", "b")])

    def test_blocks_fold_independently(self):
        # Two independent redundant blocks, each folds onto its constant row.
        inst = Instance(
            [
                fact("R", "a", "b"),
                fact("R", "a", null("N")),
                fact("Q", "c", "d"),
                fact("Q", "c", null("M")),
            ]
        )
        core = core_of(inst)
        assert core == Instance([fact("R", "a", "b"), fact("Q", "c", "d")])

    def test_original_untouched(self):
        inst = Instance([fact("R", "a", "b"), fact("R", "a", null("N"))])
        core_of(inst)
        assert len(inst) == 2


class TestCoreAfterChase:
    def test_oblivious_chase_core_equals_standard_result(self, setting):
        snapshot = Instance([fact("E", "Ada", "IBM"), fact("S", "Ada", "18k")])
        no_egd = DataExchangeSetting(
            setting.source_schema, setting.target_schema, setting.st_tgds, ()
        )
        oblivious = chase_snapshot(snapshot, no_egd, variant="oblivious").target
        standard = chase_snapshot(snapshot, no_egd, variant="standard").target
        # The oblivious run keeps Emp(Ada, IBM, N); its core drops it.
        assert core_of(oblivious) == core_of(standard) == Instance(
            [fact("Emp", "Ada", "IBM", "18k")]
        )

    def test_chase_with_egd_already_core_here(self, setting):
        snapshot = Instance(
            [fact("E", "Ada", "IBM"), fact("S", "Ada", "18k"), fact("E", "Bob", "IBM")]
        )
        result = chase_snapshot(snapshot, setting).target
        assert is_core(result)
