"""Unit tests for interval-stamped concrete facts."""

import pytest

from repro.errors import InstanceError, TemporalError
from repro.concrete import ConcreteFact, concrete_fact
from repro.relational import Constant, Fact, LabeledNull
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, interval


@pytest.fixture
def stamped() -> ConcreteFact:
    return concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2014))


class TestConstruction:
    def test_builder(self, stamped):
        assert stamped.relation == "E"
        assert stamped.data == (Constant("Ada"), Constant("IBM"))
        assert stamped.interval == Interval(2012, 2014)
        assert stamped.arity == 2

    def test_annotated_null_must_match_interval(self):
        good = AnnotatedNull("N", Interval(1, 5))
        ConcreteFact("R", (good,), Interval(1, 5))  # fine
        with pytest.raises(InstanceError, match="interval"):
            ConcreteFact("R", (good,), Interval(1, 6))

    def test_labeled_null_rejected(self):
        with pytest.raises(InstanceError, match="annotated"):
            ConcreteFact("R", (LabeledNull("N"),), Interval(1, 5))

    def test_variable_rejected(self):
        from repro.relational import Variable

        with pytest.raises(InstanceError):
            ConcreteFact("R", (Variable("x"),), Interval(1, 5))

    def test_value_semantics(self):
        a = concrete_fact("E", "x", interval=Interval(1, 3))
        b = concrete_fact("E", "x", interval=Interval(1, 3))
        c = concrete_fact("E", "x", interval=Interval(1, 4))
        assert a == b and a != c


class TestAccessors:
    def test_nulls_and_constants(self):
        null = AnnotatedNull("N", Interval(1, 5))
        item = ConcreteFact("R", (Constant("a"), null), Interval(1, 5))
        assert item.nulls() == (null,)
        assert item.constants() == (Constant("a"),)
        assert item.has_nulls()

    def test_data_shape_reduces_nulls_to_base(self):
        a = ConcreteFact(
            "R", (Constant("x"), AnnotatedNull("N", Interval(1, 3))), Interval(1, 3)
        )
        b = ConcreteFact(
            "R", (Constant("x"), AnnotatedNull("N", Interval(3, 5))), Interval(3, 5)
        )
        assert a.data_shape() == b.data_shape()


class TestTemporalOperations:
    def test_with_interval_narrows(self, stamped):
        narrowed = stamped.with_interval(Interval(2012, 2013))
        assert narrowed.interval == Interval(2012, 2013)
        assert narrowed.data == stamped.data

    def test_with_interval_reannotates_nulls(self):
        null = AnnotatedNull("N", Interval(1, 9))
        item = ConcreteFact("R", (null,), Interval(1, 9))
        narrowed = item.with_interval(Interval(3, 5))
        assert narrowed.data == (AnnotatedNull("N", Interval(3, 5)),)

    def test_with_interval_outside_raises(self, stamped):
        with pytest.raises(TemporalError):
            stamped.with_interval(Interval(2013, 2016))

    def test_fragment(self):
        item = concrete_fact("R", "a", interval=Interval(5, 11))
        pieces = item.fragment([7, 8, 10])
        assert [p.interval for p in pieces] == [
            Interval(5, 7),
            Interval(7, 8),
            Interval(8, 10),
            Interval(10, 11),
        ]
        assert all(p.data == item.data for p in pieces)

    def test_fragment_noop_returns_same_fact(self):
        item = concrete_fact("R", "a", interval=Interval(5, 11))
        assert item.fragment([5, 11, 99]) == (item,)

    def test_fragment_unbounded_with_null(self):
        null = AnnotatedNull("N", interval(8))
        item = ConcreteFact("R", (null,), interval(8))
        pieces = item.fragment([10])
        assert pieces[0].data == (AnnotatedNull("N", Interval(8, 10)),)
        assert pieces[1].data == (AnnotatedNull("N", interval(10)),)

    def test_at_projects_to_snapshot_fact(self):
        null = AnnotatedNull("N", Interval(2, 5))
        item = ConcreteFact("R", (Constant("a"), null), Interval(2, 5))
        snap = item.at(3)
        assert snap == Fact("R", (Constant("a"), LabeledNull("N@3")))

    def test_at_outside_raises(self, stamped):
        with pytest.raises(TemporalError):
            stamped.at(2014)


class TestLiftingAndSubstitution:
    def test_lifted_appends_interval_constant(self, stamped):
        lifted = stamped.lifted()
        assert lifted.relation == "E"
        assert lifted.args[-1] == Constant(Interval(2012, 2014))

    def test_substitute(self):
        null = AnnotatedNull("N", Interval(1, 5))
        item = ConcreteFact("R", (Constant("a"), null), Interval(1, 5))
        replaced = item.substitute({null: Constant("b")})
        assert replaced.data == (Constant("a"), Constant("b"))

    def test_str(self, stamped):
        assert str(stamped) == "E+(Ada, IBM, [2012, 2014))"
