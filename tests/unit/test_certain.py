"""Unit tests for certain answers (Section 5, Corollary 22)."""

import pytest

from repro.abstract_view import AbstractInstance, TemplateFact, semantics
from repro.errors import ChaseFailureError
from repro.query import (
    ConjunctiveQuery,
    certain_answers_abstract,
    certain_answers_concrete,
    certain_contained_in_solution,
)
from repro.relational import Constant
from repro.temporal import Interval, IntervalSet, interval
from repro.workloads import medical_conflicting_scenario


def row(*values):
    return tuple(Constant(v) for v in values)


class TestCertainAnswers:
    def test_abstract_equals_concrete(self, setting, source):
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        assert certain_answers_abstract(
            q, semantics(source), setting
        ) == certain_answers_concrete(q, source, setting)

    def test_known_values_certain(self, setting, source):
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        answers = certain_answers_concrete(q, source, setting)
        assert answers.support(row("Ada", "18k")) == IntervalSet.of(interval(2013))
        assert answers.support(row("Bob", "13k")) == IntervalSet.of(
            Interval(2015, 2018)
        )

    def test_unknown_values_not_certain(self, setting, source):
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        answers = certain_answers_concrete(q, source, setting)
        # Ada's pre-2013 salary and Bob's pre-2015 salary are unknown.
        assert 2012 not in answers.support(row("Ada", "18k"))
        assert 2014 not in answers.support(row("Bob", "13k"))

    def test_existence_queries_certain_despite_unknowns(self, setting, source):
        q = ConjunctiveQuery.parse("q(n, c) :- Emp(n, c, s)")
        answers = certain_answers_concrete(q, source, setting)
        # Employment itself is certain even where the salary is not.
        assert answers.support(row("Ada", "IBM")) == IntervalSet.of(
            Interval(2012, 2014)
        )
        assert answers.support(row("Bob", "IBM")) == IntervalSet.of(
            Interval(2013, 2018)
        )

    def test_failure_propagates(self):
        scenario = medical_conflicting_scenario()
        q = ConjunctiveQuery.parse("q(p) :- Case(p, w, c)")
        with pytest.raises(ChaseFailureError):
            certain_answers_concrete(q, scenario.source, scenario.setting)


class TestContainmentProbe:
    def test_certain_contained_in_specializations(self, setting, source):
        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        certain = certain_answers_concrete(q, source, setting)
        # Any solution obtained by specializing the unknowns must contain
        # every certain answer.
        specialization = AbstractInstance(
            [
                TemplateFact(
                    "Emp",
                    (Constant("Ada"), Constant("IBM"), Constant("5k")),
                    Interval(2012, 2013),
                ),
                TemplateFact(
                    "Emp",
                    (Constant("Ada"), Constant("IBM"), Constant("18k")),
                    Interval(2013, 2014),
                ),
                TemplateFact(
                    "Emp",
                    (Constant("Ada"), Constant("Google"), Constant("18k")),
                    interval(2014),
                ),
                TemplateFact(
                    "Emp",
                    (Constant("Bob"), Constant("IBM"), Constant("6k")),
                    Interval(2013, 2015),
                ),
                TemplateFact(
                    "Emp",
                    (Constant("Bob"), Constant("IBM"), Constant("13k")),
                    Interval(2015, 2018),
                ),
            ]
        )
        assert certain_contained_in_solution(certain, q, specialization)

    def test_probe_detects_overclaim(self, setting, source):
        from repro.query.answers import TemporalAnswerSet

        q = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        overclaim = TemporalAnswerSet(
            {row("Ada", "18k"): IntervalSet.of(interval(2012))}  # too early!
        )
        witness = AbstractInstance(
            [
                TemplateFact(
                    "Emp",
                    (Constant("Ada"), Constant("IBM"), Constant("5k")),
                    Interval(2012, 2013),
                ),
                TemplateFact(
                    "Emp",
                    (Constant("Ada"), Constant("IBM"), Constant("18k")),
                    interval(2013),
                ),
            ]
        )
        assert not certain_contained_in_solution(overclaim, q, witness)
