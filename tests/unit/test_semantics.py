"""Unit tests for the ⟦·⟧ semantic mapping."""

from repro.abstract_view import semantics
from repro.concrete import ConcreteFact, ConcreteInstance, concrete_fact
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, interval


class TestSemantics:
    def test_complete_instance_definition(self):
        # ⟦Ic⟧: db_ℓ = {R(a) | R+(a,[s,e)) ∈ Ic, s <= ℓ < e}.
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(2, 5)),
                concrete_fact("R", "b", interval=Interval(4, 8)),
            ]
        )
        abstract = semantics(inst)
        assert abstract.snapshot(1) == Instance()
        assert abstract.snapshot(2) == Instance([fact("R", "a")])
        assert abstract.snapshot(4) == Instance([fact("R", "a"), fact("R", "b")])
        assert abstract.snapshot(7) == Instance([fact("R", "b")])
        assert abstract.snapshot(8) == Instance()

    def test_annotated_nulls_become_per_snapshot_families(self):
        null = AnnotatedNull("N", Interval(0, 2))
        inst = ConcreteInstance(
            [ConcreteFact("Emp", (Constant("Ada"), null), Interval(0, 2))]
        )
        abstract = semantics(inst)
        assert abstract.snapshot(0) == Instance(
            [fact("Emp", "Ada", LabeledNull("N@0"))]
        )
        assert abstract.snapshot(1) == Instance(
            [fact("Emp", "Ada", LabeledNull("N@1"))]
        )

    def test_unbounded_facts_hold_forever(self):
        inst = ConcreteInstance([concrete_fact("R", "x", interval=interval(5))])
        abstract = semantics(inst)
        assert abstract.snapshot(10**6) == Instance([fact("R", "x")])

    def test_empty(self):
        assert not semantics(ConcreteInstance())

    def test_figure1_is_semantics_of_figure4(self, source, abstract_source):
        assert semantics(source) == abstract_source

    def test_fragmentation_invariant(self, source):
        # Fragmenting facts never changes the semantics.
        fragmented = ConcreteInstance()
        for item in source.facts():
            fragmented.add_all(item.fragment([2013, 2014, 2015, 2016]))
        assert semantics(fragmented).same_snapshots_as(semantics(source))
