"""Unit tests for solution / universal-solution checking (Section 3)."""

from repro.abstract_view import (
    AbstractInstance,
    TemplateFact,
    abstract_chase,
    is_solution,
    is_universal_solution,
    semantics,
)
from repro.concrete import ConcreteInstance, concrete_fact
from repro.relational import Constant
from repro.temporal import Interval, interval


def make_target(*rows) -> AbstractInstance:
    """rows: (name, company, salary, interval) with constants only."""
    return AbstractInstance(
        [
            TemplateFact(
                "Emp",
                (Constant(n), Constant(c), Constant(s)),
                stamp,
            )
            for n, c, s, stamp in rows
        ]
    )


class TestIsSolution:
    def test_chase_output_is_solution(self, abstract_source, setting):
        target = abstract_chase(abstract_source, setting).target
        assert is_solution(abstract_source, target, setting)

    def test_manual_complete_solution(self, setting):
        source = semantics(
            ConcreteInstance(
                [
                    concrete_fact("E", "Ada", "IBM", interval=Interval(0, 4)),
                    concrete_fact("S", "Ada", "18k", interval=Interval(0, 4)),
                ]
            )
        )
        target = make_target(("Ada", "IBM", "18k", Interval(0, 4)))
        assert is_solution(source, target, setting)

    def test_missing_exchange_detected(self, abstract_source, setting):
        assert not is_solution(abstract_source, AbstractInstance.empty(), setting)

    def test_partial_coverage_detected(self, setting):
        source = semantics(
            ConcreteInstance(
                [concrete_fact("E", "Ada", "IBM", interval=Interval(0, 8))]
            )
        )
        # Target covers only [0, 5): snapshots 5-7 violate σ1.
        target = make_target(("Ada", "IBM", "10k", Interval(0, 5)))
        assert not is_solution(source, target, setting)

    def test_egd_violation_detected(self, setting):
        source = semantics(
            ConcreteInstance(
                [concrete_fact("E", "Ada", "IBM", interval=Interval(0, 4))]
            )
        )
        target = make_target(
            ("Ada", "IBM", "10k", Interval(0, 4)),
            ("Ada", "IBM", "99k", Interval(2, 4)),
        )
        assert not is_solution(source, target, setting)

    def test_superfluous_facts_allowed(self, abstract_source, setting):
        target = abstract_chase(abstract_source, setting).target
        bigger = target.union(
            make_target(("Zoe", "SUN", "50k", interval(2030)))
        )
        assert is_solution(abstract_source, bigger, setting)


class TestIsUniversalSolution:
    def test_chase_result_universal_against_witnesses(
        self, abstract_source, setting
    ):
        universal = abstract_chase(abstract_source, setting).target
        # Two hand-built alternative solutions: a specialization (unknowns
        # replaced by constants) and a superset.
        specialization = make_target(
            ("Ada", "IBM", "9k", Interval(2012, 2013)),
            ("Ada", "IBM", "18k", Interval(2013, 2014)),
            ("Ada", "Google", "18k", interval(2014)),
            ("Bob", "IBM", "7k", Interval(2013, 2015)),
            ("Bob", "IBM", "13k", Interval(2015, 2018)),
        )
        superset = specialization.union(
            make_target(("Zoe", "SUN", "50k", interval(2030)))
        )
        assert is_universal_solution(
            abstract_source, universal, setting, [specialization, superset]
        )

    def test_specialization_not_universal(self, abstract_source, setting):
        universal = abstract_chase(abstract_source, setting).target
        specialization = make_target(
            ("Ada", "IBM", "9k", Interval(2012, 2013)),
            ("Ada", "IBM", "18k", Interval(2013, 2014)),
            ("Ada", "Google", "18k", interval(2014)),
            ("Bob", "IBM", "7k", Interval(2013, 2015)),
            ("Bob", "IBM", "13k", Interval(2015, 2018)),
        )
        # The specialization maps nowhere into the universal solution's
        # sibling with different invented constants — use a second
        # specialization as the witness.
        other = make_target(
            ("Ada", "IBM", "1k", Interval(2012, 2013)),
            ("Ada", "IBM", "18k", Interval(2013, 2014)),
            ("Ada", "Google", "18k", interval(2014)),
            ("Bob", "IBM", "2k", Interval(2013, 2015)),
            ("Bob", "IBM", "13k", Interval(2015, 2018)),
        )
        assert not is_universal_solution(
            abstract_source, specialization, setting, [other]
        )

    def test_non_solution_never_universal(self, abstract_source, setting):
        assert not is_universal_solution(
            abstract_source, AbstractInstance.empty(), setting, []
        )
