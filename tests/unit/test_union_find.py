"""Unit tests for the constant-priority union-find."""

import pytest

from repro.chase.union_find import ConstantClashError, TermUnionFind
from repro.relational.terms import AnnotatedNull, Constant, LabeledNull
from repro.temporal import Interval


class TestBasics:
    def test_fresh_terms_are_their_own_roots(self):
        uf = TermUnionFind()
        n = LabeledNull("N")
        assert uf.find(n) == n

    def test_union_and_same_class(self):
        uf = TermUnionFind()
        a, b = LabeledNull("A"), LabeledNull("B")
        uf.union(a, b)
        assert uf.same_class(a, b)
        assert not uf.same_class(a, LabeledNull("C"))

    def test_union_idempotent(self):
        uf = TermUnionFind()
        a, b = LabeledNull("A"), LabeledNull("B")
        first = uf.union(a, b)
        second = uf.union(a, b)
        assert first == second

    def test_transitive_merging(self):
        uf = TermUnionFind()
        a, b, c = LabeledNull("A"), LabeledNull("B"), LabeledNull("C")
        uf.union(a, b)
        uf.union(b, c)
        assert uf.same_class(a, c)


class TestConstantPriority:
    def test_constant_becomes_representative(self):
        uf = TermUnionFind()
        null, const = LabeledNull("N"), Constant("v")
        assert uf.union(null, const) == const
        assert uf.union(const, LabeledNull("M")) == const
        assert uf.find(null) == const

    def test_constant_wins_even_via_chains(self):
        uf = TermUnionFind()
        a, b = LabeledNull("A"), LabeledNull("B")
        uf.union(a, b)
        const = Constant("v")
        uf.union(a, const)
        assert uf.find(b) == const

    def test_two_constants_clash(self):
        uf = TermUnionFind()
        with pytest.raises(ConstantClashError):
            uf.union(Constant("x"), Constant("y"))

    def test_clash_through_merged_classes(self):
        uf = TermUnionFind()
        a, b = LabeledNull("A"), LabeledNull("B")
        uf.union(a, Constant("x"))
        uf.union(b, Constant("y"))
        with pytest.raises(ConstantClashError):
            uf.union(a, b)

    def test_same_constant_merges_fine(self):
        uf = TermUnionFind()
        a, b = LabeledNull("A"), LabeledNull("B")
        uf.union(a, Constant("x"))
        uf.union(b, Constant("x"))
        uf.union(a, b)  # no clash: same constant
        assert uf.find(a) == uf.find(b) == Constant("x")


class TestDeterminismAndSubstitution:
    def test_null_merge_uses_sort_order(self):
        uf = TermUnionFind()
        assert uf.union(LabeledNull("N2"), LabeledNull("N1")) == LabeledNull("N1")

    def test_annotated_nulls_supported(self):
        uf = TermUnionFind()
        a = AnnotatedNull("N", Interval(0, 2))
        b = AnnotatedNull("M", Interval(0, 2))
        winner = uf.union(a, b)
        assert winner == b  # 'M' sorts before 'N'

    def test_substitution_maps_losers_to_winners(self):
        uf = TermUnionFind()
        a, b, c = LabeledNull("A"), LabeledNull("B"), Constant("v")
        uf.union(a, b)
        uf.union(a, c)
        subst = uf.substitution()
        assert subst[a] == c and subst[b] == c
        assert c not in subst  # representatives are not mapped

    def test_classes_reports_nontrivial_only(self):
        uf = TermUnionFind()
        uf.find(LabeledNull("solo"))
        uf.union(LabeledNull("A"), LabeledNull("B"))
        classes = uf.classes()
        assert len(classes) == 1
        assert classes[0] == {LabeledNull("A"), LabeledNull("B")}

    def test_contains_and_len(self):
        uf = TermUnionFind()
        n = LabeledNull("N")
        assert n not in uf
        uf.find(n)
        assert n in uf and len(uf) == 1
