"""Unit tests for schemas and the R → R+ lifting."""

import pytest

from repro.errors import SchemaError
from repro.relational import RelationSchema, Schema
from repro.relational.schema import TEMPORAL_ATTRIBUTE


class TestRelationSchema:
    def test_basic(self):
        rel = RelationSchema("E", ("Name", "Company"))
        assert rel.arity == 2
        assert str(rel) == "E(Name, Company)"

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("E", ("A", "A"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("A",))

    def test_lift_appends_temporal_attribute(self):
        lifted = RelationSchema("E", ("Name",)).lift()
        assert lifted.attributes == ("Name", TEMPORAL_ATTRIBUTE)
        assert lifted.arity == 2

    def test_lift_name_clash_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("E", ("Time",)).lift()

    def test_position_of(self):
        rel = RelationSchema("E", ("Name", "Company"))
        assert rel.position_of("Company") == 1
        with pytest.raises(SchemaError):
            rel.position_of("Salary")


class TestSchema:
    def test_of_constructor(self):
        schema = Schema.of(E=("Name", "Company"), S=("Name", "Salary"))
        assert len(schema) == 2
        assert schema["E"].attributes == ("Name", "Company")
        assert "S" in schema and "T" not in schema

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([RelationSchema("E", ("A",)), RelationSchema("E", ("B",))])

    def test_unknown_relation_raises(self):
        schema = Schema.of(E=("A",))
        with pytest.raises(SchemaError):
            schema["F"]
        assert schema.get("F") is None

    def test_lift_all_relations(self):
        lifted = Schema.of(E=("A",), S=("B", "C")).lift()
        assert lifted["E"].arity == 2
        assert lifted["S"].attributes == ("B", "C", TEMPORAL_ATTRIBUTE)

    def test_merge_disjoint(self):
        merged = Schema.of(E=("A",)).merge(Schema.of(F=("B",)))
        assert set(merged.relation_names()) == {"E", "F"}

    def test_merge_overlap_rejected(self):
        with pytest.raises(SchemaError, match="disjoint"):
            Schema.of(E=("A",)).merge(Schema.of(E=("B",)))

    def test_validate_arity(self):
        schema = Schema.of(E=("A", "B"))
        schema.validate_arity("E", 2)
        with pytest.raises(SchemaError):
            schema.validate_arity("E", 3)

    def test_equality_and_hash(self):
        a = Schema.of(E=("A",), F=("B",))
        b = Schema.of(F=("B",), E=("A",))
        assert a == b
        assert hash(a) == hash(b)

    def test_iteration_yields_relation_schemas(self):
        schema = Schema.of(E=("A",))
        (rel,) = list(schema)
        assert isinstance(rel, RelationSchema)
        assert rel.name == "E"
