"""Unit tests for the shard-codec binary wire format."""

import pytest

from repro.abstract_view import AbstractInstance, TemplateFact, semantics
from repro.abstract_view.abstract_chase import ShardReport
from repro.chase.incremental import RegionReuseStats
from repro.chase.standard import SnapshotChaseResult, chase_snapshot
from repro.chase.trace import EgdStepRecord, FailureRecord, TgdStepRecord
from repro.dependencies import DataExchangeSetting
from repro.errors import (
    RemoteShardError,
    SerializationError,
    ShardExecutionError,
)
from repro.relational import (
    AnnotatedNull,
    Constant,
    Instance,
    LabeledNull,
    Schema,
    Variable,
    fact,
)
from repro.serialize import shard_codec
from repro.temporal import INFINITY, Interval
from repro.workloads import employment_setting, employment_source_concrete


SETTING = DataExchangeSetting.create(
    Schema.of(E=("Name", "Company"), S=("Name", "Salary")),
    Schema.of(Emp=("Name", "Company", "Salary")),
    st_tgds=[
        "E(n, c) -> EXISTS s . Emp(n, c, s)",
        "E(n, c) & S(n, s) -> Emp(n, c, s)",
    ],
    egds=["Emp(n, c, s) & Emp(n, c, s2) -> s = s2"],
)


def _mixed_instance() -> Instance:
    return Instance(
        [
            fact("E", "ada", "ibm"),
            fact("E", "bob", LabeledNull("N1")),
            fact("S", "ada", AnnotatedNull("M", Interval(2, 5))),
            fact("R", 7, -3),
            fact("R", 2.5, True),
            fact("Q", Constant(None), Constant(("tu", "ple"))),
            fact("Q", Constant(Interval(0, INFINITY)), Constant(False)),
        ]
    )


class TestValueMessages:
    def test_instance_roundtrip(self):
        instance = _mixed_instance()
        decoded = shard_codec.decode_instance(
            shard_codec.encode_instance(instance)
        )
        assert decoded == instance
        assert decoded.nulls() == instance.nulls()
        assert decoded.constants() == instance.constants()

    def test_decoded_instance_indexes_answer_lookups(self):
        instance = _mixed_instance()
        decoded = shard_codec.decode_instance(
            shard_codec.encode_instance(instance)
        )
        for relation in instance.relation_names():
            for item in instance.facts_of(relation):
                for position, value in enumerate(item.args):
                    assert decoded.lookup(relation, {position: value}) == (
                        instance.lookup(relation, {position: value})
                    )

    def test_equal_constants_of_different_types_do_not_collapse(self):
        # Constant(True) == Constant(1) == Constant(1.0) under Python
        # equality; the intern tables must still keep them distinct or
        # the decoded output renders the first-seen representative.
        instance = Instance(
            [
                fact("A", Constant(1)),
                fact("B", Constant(True)),
                fact("C", Constant(1.0)),
            ]
        )
        decoded = shard_codec.decode_instance(
            shard_codec.encode_instance(instance)
        )
        (a,) = decoded.facts_of("A")
        (b,) = decoded.facts_of("B")
        (c,) = decoded.facts_of("C")
        assert a.args[0].value is not True and a.args[0].value == 1
        assert type(a.args[0].value) is int
        assert b.args[0].value is True
        assert type(c.args[0].value) is float

    def test_term_interning_shares_decoded_objects(self):
        ada = Constant("ada")
        instance = Instance([fact("E", ada, "ibm"), fact("S", ada, "10k")])
        decoded = shard_codec.decode_instance(
            shard_codec.encode_instance(instance)
        )
        (e_fact,) = decoded.facts_of("E")
        (s_fact,) = decoded.facts_of("S")
        assert e_fact.args[0] is s_fact.args[0]

    def test_abstract_instance_roundtrip(self):
        abstract = semantics(employment_source_concrete())
        decoded = shard_codec.decode_abstract_instance(
            shard_codec.encode_abstract_instance(abstract)
        )
        assert decoded == abstract
        assert decoded.same_snapshots_as(abstract)

    def test_setting_roundtrip_chases_identically(self):
        decoded = shard_codec.decode_setting(
            shard_codec.encode_setting(SETTING)
        )
        source = Instance([fact("E", "ada", "ibm"), fact("S", "ada", "10k")])
        original = chase_snapshot(source, SETTING)
        replayed = chase_snapshot(source, decoded)
        assert replayed.target == original.target
        assert [str(s) for s in replayed.trace.steps] == [
            str(s) for s in original.trace.steps
        ]


class TestTaskMessage:
    def test_roundtrip(self):
        abstract = semantics(employment_source_concrete())
        regions = abstract.regions()[:3]
        task = shard_codec.ShardTask(
            shard=2,
            prefix="Ns2_",
            counter=7,
            variant="standard",
            engine="delta",
            incremental=True,
            regions=regions,
            templates=tuple(abstract.templates),
            setting=employment_setting(),
        )
        decoded = shard_codec.decode_shard_task(
            shard_codec.encode_shard_task(task)
        )
        assert decoded.shard == 2
        assert decoded.prefix == "Ns2_"
        assert decoded.counter == 7
        assert decoded.variant == "standard"
        assert decoded.engine == "delta"
        assert decoded.incremental is True
        assert decoded.regions == regions
        assert AbstractInstance(decoded.templates) == abstract


def _outcome_fixture() -> shard_codec.ShardOutcome:
    region_a, region_b = Interval(0, 3), Interval(3, INFINITY)
    shared = TgdStepRecord(
        dependency="σ1",
        assignment={Variable("n"): Constant("ada")},
        added_facts=(fact("Emp", "ada", "ibm", "10k"),),
        fresh_nulls=(),
    )
    minted = TgdStepRecord(
        dependency="σ1",
        assignment={Variable("n"): Constant("bob")},
        added_facts=(fact("Emp", "bob", "hp", LabeledNull("Ns0_1")),),
        fresh_nulls=(LabeledNull("Ns0_1"),),
    )
    egd = EgdStepRecord("ε1", LabeledNull("Ns0_1"), Constant("20k"))
    result_a = SnapshotChaseResult(
        target=Instance([fact("Emp", "ada", "ibm", "10k")])
    )
    result_a.trace.record(shared)
    result_b = SnapshotChaseResult(
        target=Instance(
            [
                fact("Emp", "ada", "ibm", "10k"),
                fact("Emp", "bob", "hp", "20k"),
            ]
        )
    )
    # The shared record appears in BOTH traces (incremental replay
    # contract) — the codec must restore the sharing.
    result_b.trace.record(shared)
    result_b.trace.record(minted)
    result_b.trace.record(egd)
    reuse = RegionReuseStats(replayed_matches=3, live_matches=1)
    report = ShardReport(
        shard=0,
        regions=2,
        seconds=0.125,
        nulls_issued=4,
        reuse=reuse,
        remote=True,
    )
    templates = tuple(
        TemplateFact.make(item.relation, item.args, region)
        for region, result in (
            (region_a, result_a),
            (region_b, result_b),
        )
        for item in result.target.facts()
        if not item.has_nulls()
    )
    return shard_codec.ShardOutcome(
        results=((region_a, result_a), (region_b, result_b)),
        region_reuse={region_a: RegionReuseStats(live_matches=2)},
        error=None,
        report=report,
        merged_templates=templates,
    )


class TestOutcomeMessage:
    def test_roundtrip(self):
        outcome = _outcome_fixture()
        decoded = shard_codec.decode_shard_outcome(
            shard_codec.encode_shard_outcome(outcome)
        )
        assert decoded.error is None
        assert decoded.report == outcome.report
        assert decoded.report.remote is True
        assert set(decoded.merged_templates) == set(outcome.merged_templates)
        assert list(decoded.region_reuse) == list(outcome.region_reuse)
        for region, stats in outcome.region_reuse.items():
            assert vars(decoded.region_reuse[region]) == vars(stats)
        for (region, result), (dregion, dresult) in zip(
            outcome.results, decoded.results, strict=True
        ):
            assert dregion == region
            assert dresult.target == result.target
            assert dresult.failed == result.failed
            assert [str(s) for s in dresult.trace.steps] == [
                str(s) for s in result.trace.steps
            ]

    def test_shared_records_stay_shared(self):
        outcome = _outcome_fixture()
        decoded = shard_codec.decode_shard_outcome(
            shard_codec.encode_shard_outcome(outcome)
        )
        first = decoded.results[0][1].trace.steps[0]
        again = decoded.results[1][1].trace.steps[0]
        assert first is again

    def test_tgd_record_fields_roundtrip(self):
        outcome = _outcome_fixture()
        decoded = shard_codec.decode_shard_outcome(
            shard_codec.encode_shard_outcome(outcome)
        )
        minted = decoded.results[1][1].trace.steps[1]
        assert isinstance(minted, TgdStepRecord)
        assert minted.assignment == {Variable("n"): Constant("bob")}
        assert minted.fresh_nulls == (LabeledNull("Ns0_1"),)
        assert minted.added_facts == (
            fact("Emp", "bob", "hp", LabeledNull("Ns0_1")),
        )

    def test_failure_roundtrip(self):
        region = Interval(1, 4)
        failure = FailureRecord("ε1", Constant("10k"), Constant("20k"))
        result = SnapshotChaseResult(
            target=Instance([fact("Emp", "ada", "ibm", "10k")]),
            failed=True,
            failure=failure,
        )
        result.trace.record(failure)
        outcome = shard_codec.ShardOutcome(
            results=((region, result),),
            region_reuse={},
            error=None,
            report=ShardReport(1, 1, 0.0, 0, None, remote=True),
            merged_templates=(),
        )
        decoded = shard_codec.decode_shard_outcome(
            shard_codec.encode_shard_outcome(outcome)
        )
        dresult = decoded.results[0][1]
        assert dresult.failed
        assert str(dresult.failure) == str(failure)
        assert dresult.target == result.target

    def test_error_roundtrip(self):
        region = Interval(2, 5)
        error = ShardExecutionError(3, region, ValueError("boom"))
        outcome = shard_codec.ShardOutcome(
            results=(),
            region_reuse={},
            error=error,
            report=ShardReport(3, 0, 0.0, 0, None, remote=True),
            merged_templates=(),
        )
        decoded = shard_codec.decode_shard_outcome(
            shard_codec.encode_shard_outcome(outcome)
        )
        assert isinstance(decoded.error, ShardExecutionError)
        assert decoded.error.shard == 3
        assert decoded.error.region == region
        assert isinstance(decoded.error.__cause__, RemoteShardError)
        assert "ValueError: boom" in str(decoded.error)


class TestWireSafety:
    def test_bad_magic_rejected(self):
        with pytest.raises(SerializationError, match="magic"):
            shard_codec.decode_instance(b"NOPE" + b"\x00" * 64)

    def test_truncated_payload_rejected(self):
        payload = shard_codec.encode_instance(_mixed_instance())
        with pytest.raises(SerializationError):
            shard_codec.decode_instance(payload[: len(payload) // 3])

    def test_wrong_message_kind_rejected(self):
        payload = shard_codec.encode_instance(_mixed_instance())
        with pytest.raises(SerializationError, match="kind"):
            shard_codec.decode_shard_task(payload)
