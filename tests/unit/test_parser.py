"""Unit tests for the textual syntax of atoms, conjunctions, implications."""

import pytest

from repro.errors import ParseError
from repro.relational import Constant, Variable, parse_atom, parse_conjunction
from repro.relational.parser import parse_implication, tokenize


class TestTokenizer:
    def test_kinds(self):
        kinds = [t.kind for t in tokenize("E(n, 'IBM') -> x = y")]
        assert kinds == [
            "IDENT",
            "LPAREN",
            "IDENT",
            "COMMA",
            "STRING",
            "RPAREN",
            "ARROW",
            "IDENT",
            "EQUALS",
            "IDENT",
        ]

    def test_unicode_arrow_and_and(self):
        kinds = {t.kind for t in tokenize("R(x) ∧ S(y) → T(x)")}
        assert "AND" in kinds and "ARROW" in kinds

    def test_garbage_raises_with_position(self):
        with pytest.raises(ParseError) as err:
            tokenize("R(x) # comment")
        assert err.value.position == 5

    def test_numbers(self):
        tokens = tokenize("R(18, x)")
        assert tokens[2].kind == "NUMBER"


class TestParseAtom:
    def test_variables_and_constants(self):
        atom = parse_atom("Emp(n, 'IBM', 18)")
        assert atom.relation == "Emp"
        assert atom.args == (Variable("n"), Constant("IBM"), Constant(18))

    def test_double_quoted_strings(self):
        atom = parse_atom('R("hello world")')
        assert atom.args == (Constant("hello world"),)

    def test_nullary(self):
        assert parse_atom("Alive()").arity == 0

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) extra")

    def test_missing_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x")


class TestParseConjunction:
    @pytest.mark.parametrize(
        "text",
        [
            "E(n, c) & S(n, s)",
            "E(n, c) && S(n, s)",
            "E(n, c) ∧ S(n, s)",
            "E(n, c) AND S(n, s)",
            r"E(n, c) /\ S(n, s)",
        ],
    )
    def test_connective_spellings(self, text):
        conj = parse_conjunction(text)
        assert conj.relations() == ("E", "S")

    def test_single_atom(self):
        assert len(parse_conjunction("E(n, c)")) == 1

    def test_shared_variables_preserved(self):
        conj = parse_conjunction("E(n, c) & S(n, s)")
        assert conj.variables() == (Variable("n"), Variable("c"), Variable("s"))


class TestParseImplication:
    def test_tgd_with_explicit_exists(self):
        skel = parse_implication("E(n, c) -> EXISTS s . Emp(n, c, s)")
        assert not skel.is_equality
        assert skel.existential_variables == (Variable("s"),)
        assert skel.rhs is not None and skel.rhs.relations() == ("Emp",)

    def test_tgd_with_implicit_existentials(self):
        skel = parse_implication("E(n, c) -> Emp(n, c, s)")
        assert skel.existential_variables == (Variable("s"),)

    def test_tgd_full_export_no_existentials(self):
        skel = parse_implication("E(n, c) & S(n, s) -> Emp(n, c, s)")
        assert skel.existential_variables == ()

    def test_multiple_existentials(self):
        skel = parse_implication(
            "P(n) -> EXISTS a, b . Q(n, a) & R(n, b)"
        )
        assert skel.existential_variables == (Variable("a"), Variable("b"))

    def test_egd_shape(self):
        skel = parse_implication("Emp(n, c, s) & Emp(n, c, s2) -> s = s2")
        assert skel.is_equality
        assert skel.equality == (Variable("s"), Variable("s2"))
        assert skel.rhs is None

    def test_unicode_exists(self):
        skel = parse_implication("E(n) → ∃ s . T(n, s)")
        assert skel.existential_variables == (Variable("s"),)

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_implication("E(n) -> T(n) garbage(x)")
        with pytest.raises(ParseError):
            parse_implication("E(n) -> x = y & z")

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_implication("E(n) T(n)")

    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_implication("")
