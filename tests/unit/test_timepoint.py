"""Unit tests for the time-point domain N0 ∪ {∞}."""

import pickle

import pytest

from repro.errors import TemporalError
from repro.temporal.timepoint import (
    INFINITY,
    Infinity,
    check_time_point,
    is_time_point,
    max_point,
    min_point,
    parse_time_point,
    time_point_to_str,
)


class TestInfinitySingleton:
    def test_constructor_returns_singleton(self):
        assert Infinity() is INFINITY

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(INFINITY)) is INFINITY

    def test_repr_and_str(self):
        assert repr(INFINITY) == "INFINITY"
        assert str(INFINITY) == "inf"

    def test_truthy(self):
        assert bool(INFINITY)


class TestInfinityOrdering:
    def test_greater_than_any_int(self):
        assert INFINITY > 0
        assert INFINITY > 10**18

    def test_not_less_than_int(self):
        assert not (INFINITY < 10**18)

    def test_int_comparisons_reflected(self):
        assert 5 < INFINITY
        assert 5 <= INFINITY
        assert not (5 > INFINITY)
        assert not (5 >= INFINITY)

    def test_equal_only_to_itself(self):
        assert INFINITY == Infinity()
        assert INFINITY != 7
        assert not (INFINITY == "inf")

    def test_le_ge_with_infinity(self):
        assert INFINITY <= INFINITY
        assert INFINITY >= INFINITY
        assert not (INFINITY < INFINITY)
        assert not (INFINITY > INFINITY)

    def test_hashable_and_stable(self):
        assert hash(INFINITY) == hash(Infinity())
        assert len({INFINITY, Infinity()}) == 1


class TestInfinityArithmetic:
    def test_addition_saturates(self):
        assert INFINITY + 5 is INFINITY
        assert 5 + INFINITY is INFINITY
        assert INFINITY + INFINITY is INFINITY

    def test_subtracting_finite_saturates(self):
        assert INFINITY - 100 is INFINITY

    def test_infinity_minus_infinity_undefined(self):
        with pytest.raises(TemporalError):
            INFINITY - INFINITY  # noqa: B018

    def test_finite_minus_infinity_undefined(self):
        with pytest.raises(TemporalError):
            5 - INFINITY  # noqa: B018


class TestValidation:
    def test_valid_points(self):
        assert is_time_point(0)
        assert is_time_point(2024)
        assert is_time_point(INFINITY)

    def test_invalid_points(self):
        assert not is_time_point(-1)
        assert not is_time_point(1.5)
        assert not is_time_point("7")
        assert not is_time_point(True)  # bools are not time points

    def test_check_passes_through(self):
        assert check_time_point(3) == 3
        assert check_time_point(INFINITY) is INFINITY

    def test_check_raises(self):
        with pytest.raises(TemporalError, match="invalid"):
            check_time_point(-2)


class TestParsingAndRendering:
    @pytest.mark.parametrize("text", ["inf", "INF", "Infinity", "∞", "oo"])
    def test_parse_infinity_spellings(self, text):
        assert parse_time_point(text) is INFINITY

    def test_parse_number(self):
        assert parse_time_point(" 42 ") == 42

    def test_parse_garbage_raises(self):
        with pytest.raises(TemporalError):
            parse_time_point("soon")

    def test_parse_negative_raises(self):
        with pytest.raises(TemporalError):
            parse_time_point("-3")

    def test_to_str(self):
        assert time_point_to_str(7) == "7"
        assert time_point_to_str(INFINITY) == "inf"


class TestMinMax:
    def test_min_of_finite(self):
        assert min_point(3, 9) == 3

    def test_min_with_infinity(self):
        assert min_point(INFINITY, 9) == 9
        assert min_point(9, INFINITY) == 9

    def test_max_with_infinity(self):
        assert max_point(3, INFINITY) is INFINITY
        assert max_point(INFINITY, INFINITY) is INFINITY
