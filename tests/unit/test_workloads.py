"""Unit tests for workload builders and generators."""

from repro.concrete import c_chase
from repro.correspondence import verify_correspondence
from repro.workloads import (
    algorithm1_example_conjunctions,
    algorithm1_example_instance,
    employment_setting,
    employment_source_abstract,
    employment_source_concrete,
    exchange_setting_copy,
    exchange_setting_decompose,
    exchange_setting_join,
    medical_conflicting_scenario,
    medical_scenario,
    nested_overlap_conjunctions,
    nested_overlap_instance,
    random_concrete_instance,
    random_employment_history,
    scheduling_scenario,
    staircase_instance,
)


class TestEmploymentBuilders:
    def test_source_is_figure4(self):
        source = employment_source_concrete()
        assert len(source) == 5
        assert source.is_coalesced()
        assert source.breakpoints() == (2012, 2013, 2014, 2015, 2018)

    def test_abstract_matches_concrete(self):
        from repro.abstract_view import semantics

        assert employment_source_abstract() == semantics(
            employment_source_concrete()
        )

    def test_setting_shape(self):
        setting = employment_setting()
        assert len(setting.st_tgds) == 2 and len(setting.egds) == 1

    def test_example14_instance(self):
        inst = algorithm1_example_instance()
        assert len(inst) == 5
        assert inst.relation_names() == ("P", "R", "S")
        assert len(algorithm1_example_conjunctions()) == 2


class TestScenarios:
    def test_medical_exchanges_cleanly(self):
        scenario = medical_scenario()
        result = c_chase(scenario.source, scenario.setting)
        assert result.succeeded
        assert result.target.nulls()  # some conditions are unknown

    def test_medical_conflict_fails(self):
        scenario = medical_conflicting_scenario()
        assert c_chase(scenario.source, scenario.setting).failed

    def test_scheduling_exchanges_cleanly(self):
        scenario = scheduling_scenario()
        result = c_chase(scenario.source, scenario.setting)
        assert result.succeeded

    def test_scenarios_satisfy_correspondence(self):
        for scenario in (medical_scenario(), scheduling_scenario()):
            assert verify_correspondence(scenario.source, scenario.setting).holds


class TestGenerators:
    def test_employment_history_deterministic(self):
        a = random_employment_history(people=5, seed=42)
        b = random_employment_history(people=5, seed=42)
        assert a.instance == b.instance

    def test_employment_history_seed_sensitivity(self):
        a = random_employment_history(people=5, seed=1)
        b = random_employment_history(people=5, seed=2)
        assert a.instance != b.instance

    def test_employment_history_coalesced(self):
        workload = random_employment_history(people=10, seed=7)
        assert workload.instance.is_coalesced()

    def test_employment_history_exchanges(self):
        workload = random_employment_history(people=4, timeline=20, seed=3)
        result = c_chase(workload.instance, exchange_setting_join())
        assert result.succeeded

    def test_nested_overlap_shape(self):
        inst = nested_overlap_instance(6)
        assert len(inst) == 6
        stamps = sorted(inst.intervals(), key=lambda i: i.start)
        # Every pair of stamps overlaps (nested structure).
        for a in stamps:
            for b in stamps:
                assert a.overlaps(b)

    def test_nested_overlap_conjunctions(self):
        (conj,) = nested_overlap_conjunctions()
        assert len(conj) == 2

    def test_staircase_neighbours_only(self):
        inst = staircase_instance(5, overlap=1)
        stamps = sorted(inst.intervals(), key=lambda i: i.start)
        for index, stamp in enumerate(stamps):
            for other_index, other in enumerate(stamps):
                expected = abs(index - other_index) <= 1
                assert stamp.overlaps(other) == expected

    def test_random_instance_size_and_determinism(self):
        a = random_concrete_instance(30, seed=5)
        b = random_concrete_instance(30, seed=5)
        assert len(a) == 30 and a == b

    def test_random_instance_respects_relations(self):
        inst = random_concrete_instance(
            10, relations=(("A", 1), ("B", 2)), seed=0
        )
        assert set(inst.relation_names()) <= {"A", "B"}


class TestMappingFamilies:
    def test_copy_setting(self):
        setting = exchange_setting_copy()
        assert len(setting.st_tgds) == 1 and not setting.egds

    def test_join_setting_matches_employment(self):
        assert len(exchange_setting_join().st_tgds) == 2

    def test_decompose_setting_exchanges(self):
        from repro.concrete import ConcreteInstance, concrete_fact
        from repro.temporal import Interval

        source = ConcreteInstance(
            [concrete_fact("F", "ada", "ibm", "18k", interval=Interval(0, 4))]
        )
        result = c_chase(source, exchange_setting_decompose())
        assert result.succeeded
        assert len(result.target.facts_of("Works")) == 1
        assert len(result.target.facts_of("Earns")) == 1
        # The invented key is the same annotated null in both facts.
        (works,) = result.target.facts_of("Works")
        (earns,) = result.target.facts_of("Earns")
        assert works.data[0] == earns.data[0]
