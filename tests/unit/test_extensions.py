"""Unit tests for the ♦⁻ (sometime-in-the-past) extension."""

import pytest

from repro.abstract_view import AbstractInstance, TemplateFact
from repro.errors import FormulaError
from repro.extensions import (
    PastTGD,
    past_chase,
    satisfies_always_past,
    satisfies_past_tgd,
)
from repro.relational import Constant, Instance, fact
from repro.temporal import Interval, interval


@pytest.fixture
def phd_dependency() -> PastTGD:
    return PastTGD.parse("PhDgrad(n) -> EXISTS adv, top . PhDCan(n, adv, top)")


def grads(*runs) -> AbstractInstance:
    """runs: (name, interval) pairs of PhDgrad facts."""
    return AbstractInstance.from_snapshot_runs(
        [(Instance([fact("PhDgrad", name)]), stamp) for name, stamp in runs]
    )


class TestPastTGD:
    def test_parse(self, phd_dependency):
        assert len(phd_dependency.lhs) == 1
        assert len(phd_dependency.existential_variables) == 2
        assert "♦⁻" in str(phd_dependency)

    def test_equality_shape_rejected(self):
        with pytest.raises(FormulaError):
            PastTGD.parse("R(x, y) -> x = y")

    def test_safety_validated(self):
        with pytest.raises(FormulaError):
            PastTGD.parse("R(x) -> EXISTS x . T(x)")


class TestSatisfaction:
    def test_witness_before_firing_satisfies(self, phd_dependency):
        source = grads(("maya", interval(6)))
        target = AbstractInstance(
            [
                TemplateFact(
                    "PhDCan",
                    (Constant("maya"), Constant("prof"), Constant("chase")),
                    Interval(3, 5),
                )
            ]
        )
        assert satisfies_past_tgd(source, target, phd_dependency)

    def test_witness_only_after_firing_fails(self, phd_dependency):
        source = grads(("maya", Interval(6, 8)))
        target = AbstractInstance(
            [
                TemplateFact(
                    "PhDCan",
                    (Constant("maya"), Constant("prof"), Constant("chase")),
                    Interval(9, 12),
                )
            ]
        )
        assert not satisfies_past_tgd(source, target, phd_dependency)

    def test_simultaneous_witness_not_past(self, phd_dependency):
        # t' < t is strict: a witness AT the graduation snapshot only
        # does not satisfy ♦⁻ at the first graduation snapshot.
        source = grads(("maya", Interval(6, 7)))
        target = AbstractInstance(
            [
                TemplateFact(
                    "PhDCan",
                    (Constant("maya"), Constant("p"), Constant("t")),
                    Interval(6, 7),
                )
            ]
        )
        assert not satisfies_past_tgd(source, target, phd_dependency)

    def test_empty_source_vacuously_satisfied(self, phd_dependency):
        assert satisfies_past_tgd(
            AbstractInstance.empty(), AbstractInstance.empty(), phd_dependency
        )

    def test_always_past_requires_total_coverage(self, phd_dependency):
        source = grads(("maya", Interval(4, 6)))
        partial = AbstractInstance(
            [
                TemplateFact(
                    "PhDCan",
                    (Constant("maya"), Constant("p"), Constant("t")),
                    Interval(2, 4),
                )
            ]
        )
        total = AbstractInstance(
            [
                TemplateFact(
                    "PhDCan",
                    (Constant("maya"), Constant("p"), Constant("t")),
                    Interval(0, 6),
                )
            ]
        )
        assert satisfies_past_tgd(source, partial, phd_dependency)
        assert not satisfies_always_past(source, partial, phd_dependency)
        assert satisfies_always_past(source, total, phd_dependency)


class TestPastChase:
    def test_witness_placed_immediately_before(self, phd_dependency):
        source = grads(("maya", interval(6)))
        result = past_chase(source, [phd_dependency])
        assert result.succeeded and result.witnesses_placed == 1
        snap = result.target.snapshot(5)
        assert len(snap.facts_of("PhDCan")) == 1
        assert not result.target.snapshot(4)

    def test_result_satisfies_dependency(self, phd_dependency):
        source = grads(("maya", interval(6)), ("tom", Interval(9, 12)))
        result = past_chase(source, [phd_dependency])
        assert satisfies_past_tgd(source, result.target, phd_dependency)

    def test_one_witness_per_match(self, phd_dependency):
        # The same person graduating over a long interval needs ONE witness.
        source = grads(("maya", Interval(6, 100)))
        result = past_chase(source, [phd_dependency])
        assert result.witnesses_placed == 1

    def test_distinct_matches_get_distinct_witnesses(self, phd_dependency):
        source = grads(("maya", interval(6)), ("tom", interval(6)))
        result = past_chase(source, [phd_dependency])
        assert result.witnesses_placed == 2
        # Their unknowns are distinct nulls.
        assert len(result.target.per_snapshot_nulls()) == 4

    def test_firing_at_zero_fails(self, phd_dependency):
        source = grads(("eve", interval(0)))
        result = past_chase(source, [phd_dependency])
        assert result.failed
        assert result.unsatisfiable_at_zero

    def test_exported_constants_propagate(self, phd_dependency):
        source = grads(("maya", interval(6)))
        result = past_chase(source, [phd_dependency])
        (witness,) = result.target.snapshot(5).facts_of("PhDCan")
        assert witness.args[0] == Constant("maya")
