"""Unit tests for rendering, JSON and CSV serialization."""

import pytest

from repro.abstract_view import semantics
from repro.concrete import ConcreteFact, ConcreteInstance, c_chase, concrete_fact
from repro.errors import SerializationError
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.relational.terms import AnnotatedNull
from repro.serialize import (
    concrete_instance_from_json,
    concrete_instance_to_json,
    dumps,
    instance_from_csv_dict,
    instance_from_json,
    instance_to_csv_dict,
    instance_to_json,
    loads,
    relation_from_csv,
    relation_to_csv,
    render_abstract_snapshots,
    render_concrete_instance,
    render_concrete_relation,
    render_snapshot,
    render_table,
    setting_from_json,
    setting_to_json,
    term_from_json,
    term_to_json,
)
from repro.temporal import Interval, interval


class TestRender:
    def test_table_alignment(self):
        text = render_table("T+", ["A", "Time"], [["x", "[1, 3)"]])
        lines = text.splitlines()
        assert lines[0] == "T+"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_concrete_relation_uses_schema_headers(self, source, setting):
        text = render_concrete_relation(source, "E", setting.lifted_source_schema())
        assert "Name" in text and "Company" in text and "Time" in text
        assert "[2012, 2014)" in text

    def test_concrete_relation_fallback_headers(self, source):
        text = render_concrete_relation(source, "E")
        assert "A1" in text and "Time" in text

    def test_empty_relation(self):
        assert "empty" in render_concrete_relation(ConcreteInstance(), "E")

    def test_full_instance_renders_all_relations(self, source):
        text = render_concrete_instance(source)
        assert "E+" in text and "S+" in text

    def test_snapshot_rendering(self):
        assert render_snapshot(Instance()) == "{}"
        assert render_snapshot(Instance([fact("E", "a")])) == "{E(a)}"

    def test_abstract_snapshots(self, abstract_source):
        text = render_abstract_snapshots(abstract_source, [2012, 2013])
        assert text.splitlines()[0].startswith("2012")
        assert "E(Ada, IBM)" in text


class TestTermJson:
    @pytest.mark.parametrize(
        "term",
        [
            Constant("Ada"),
            Constant(42),
            LabeledNull("N7"),
            AnnotatedNull("N", Interval(2, 5)),
            AnnotatedNull("M", interval(4)),
        ],
    )
    def test_roundtrip(self, term):
        assert term_from_json(term_to_json(term)) == term

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            term_from_json({"kind": "martian", "x": 1})


class TestConcreteInstanceJson:
    def test_roundtrip_simple(self, source):
        payload = concrete_instance_to_json(source)
        assert concrete_instance_from_json(payload) == source

    def test_roundtrip_with_nulls(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        assert loads(dumps(solution)) == solution

    def test_missing_field_rejected(self):
        with pytest.raises(SerializationError):
            concrete_instance_from_json({"rows": []})

    def test_bad_json_text_rejected(self):
        with pytest.raises(SerializationError):
            loads("{not json")


class TestSnapshotInstanceJson:
    def test_roundtrip(self):
        inst = Instance([fact("Emp", "Ada", LabeledNull("N"))])
        assert instance_from_json(instance_to_json(inst)) == inst

    def test_missing_facts_rejected(self):
        with pytest.raises(SerializationError):
            instance_from_json({})


class TestSettingJson:
    def test_roundtrip(self, setting):
        payload = setting_to_json(setting)
        restored = setting_from_json(payload)
        assert restored.source_schema == setting.source_schema
        assert restored.target_schema == setting.target_schema
        assert len(restored.st_tgds) == 2 and len(restored.egds) == 1
        # The restored mapping behaves identically.
        from repro.workloads import employment_source_concrete

        src = employment_source_concrete()
        assert c_chase(src, restored).target == c_chase(src, setting).target

    def test_constants_in_dependencies_roundtrip(self):
        from repro.dependencies import DataExchangeSetting
        from repro.relational import Schema

        original = DataExchangeSetting.create(
            Schema.of(R=("A", "B")),
            Schema.of(T=("A",)),
            st_tgds=["R(x, 'ibm') -> T(x)"],
        )
        restored = setting_from_json(setting_to_json(original))
        assert restored.st_tgds[0].lhs == original.st_tgds[0].lhs


class TestCsv:
    def test_relation_roundtrip(self, source):
        text = relation_to_csv(source, "E", headers=["name", "company"])
        restored = relation_from_csv("E", text)
        assert restored.facts_of("E") == source.facts_of("E")

    def test_null_sigil_roundtrip(self):
        null = AnnotatedNull("N1", Interval(2, 5))
        inst = ConcreteInstance(
            [ConcreteFact("R", (Constant("a"), null), Interval(2, 5))]
        )
        text = relation_to_csv(inst, "R")
        assert "~N1" in text
        assert relation_from_csv("R", text) == inst

    def test_integer_cells_become_int_constants(self):
        inst = ConcreteInstance([concrete_fact("R", 7, interval=Interval(0, 2))])
        restored = relation_from_csv("R", relation_to_csv(inst, "R"))
        assert restored == inst

    def test_unbounded_interval_roundtrip(self):
        inst = ConcreteInstance([concrete_fact("R", "x", interval=interval(9))])
        assert relation_from_csv("R", relation_to_csv(inst, "R")) == inst

    def test_instance_dict_roundtrip(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        tables = instance_to_csv_dict(solution)
        assert instance_from_csv_dict(tables) == solution

    def test_header_validation(self):
        with pytest.raises(SerializationError):
            relation_from_csv("R", "a,b\nx,y\n")

    def test_row_width_validation(self):
        with pytest.raises(SerializationError):
            relation_from_csv("R", "a,start,end\nx,1\n")

    def test_bad_header_count(self, source):
        with pytest.raises(SerializationError):
            relation_to_csv(source, "E", headers=["only-one"])

    def test_semantics_survives_roundtrip(self, setting, source):
        solution = c_chase(source, setting).unwrap()
        restored = instance_from_csv_dict(instance_to_csv_dict(solution))
        assert semantics(restored).same_snapshots_as(semantics(solution))
