"""Unit tests for relational instances (snapshots)."""

import pytest

from repro.errors import SchemaError
from repro.relational import Constant, Fact, Instance, LabeledNull, Schema, fact


@pytest.fixture
def simple() -> Instance:
    return Instance(
        [
            fact("E", "Ada", "IBM"),
            fact("E", "Bob", "IBM"),
            fact("S", "Ada", "18k"),
        ]
    )


class TestMutation:
    def test_add_returns_novelty(self, simple):
        assert simple.add(fact("E", "Cyd", "HP"))
        assert not simple.add(fact("E", "Cyd", "HP"))

    def test_add_all_counts_new(self, simple):
        added = simple.add_all([fact("E", "Ada", "IBM"), fact("E", "Dee", "HP")])
        assert added == 1

    def test_discard(self, simple):
        assert simple.discard(fact("S", "Ada", "18k"))
        assert not simple.discard(fact("S", "Ada", "18k"))
        assert fact("S", "Ada", "18k") not in simple

    def test_schema_validation(self):
        schema = Schema.of(E=("Name", "Company"))
        inst = Instance(schema=schema)
        inst.add(fact("E", "Ada", "IBM"))
        with pytest.raises(SchemaError):
            inst.add(fact("F", "x"))
        with pytest.raises(SchemaError):
            inst.add(fact("E", "just-one"))


class TestQueries:
    def test_len_and_bool(self, simple):
        assert len(simple) == 3
        assert simple
        assert not Instance()

    def test_contains(self, simple):
        assert fact("E", "Ada", "IBM") in simple
        assert fact("E", "Ada", "HP") not in simple
        assert "not a fact" not in simple

    def test_relation_names_sorted(self, simple):
        assert simple.relation_names() == ("E", "S")

    def test_facts_of(self, simple):
        assert simple.facts_of("E") == {
            fact("E", "Ada", "IBM"),
            fact("E", "Bob", "IBM"),
        }
        assert simple.facts_of("Z") == frozenset()

    def test_iteration_deterministic(self, simple):
        assert list(simple) == sorted(simple.facts(), key=Fact.sort_key)


class TestLookup:
    def test_lookup_by_position(self, simple):
        hits = simple.lookup("E", {1: Constant("IBM")})
        assert hits == {fact("E", "Ada", "IBM"), fact("E", "Bob", "IBM")}

    def test_lookup_multiple_positions(self, simple):
        hits = simple.lookup("E", {0: Constant("Ada"), 1: Constant("IBM")})
        assert hits == {fact("E", "Ada", "IBM")}

    def test_lookup_no_bindings_returns_all(self, simple):
        assert simple.lookup("S", {}) == simple.facts_of("S")

    def test_lookup_miss(self, simple):
        assert simple.lookup("E", {0: Constant("Zed")}) == frozenset()
        assert simple.lookup("Nope", {}) == frozenset()

    def test_lookup_after_mutation_sees_new_facts(self, simple):
        simple.lookup("E", {1: Constant("IBM")})  # build the index
        simple.add(fact("E", "Eve", "IBM"))
        hits = simple.lookup("E", {1: Constant("IBM")})
        assert fact("E", "Eve", "IBM") in hits


class TestTermQueries:
    def test_nulls_and_completeness(self):
        null = LabeledNull("N")
        inst = Instance([fact("Emp", "Ada", null)])
        assert inst.nulls() == {null}
        assert not inst.is_complete
        assert Instance([fact("E", "a")]).is_complete

    def test_constants(self, simple):
        values = {c.value for c in simple.constants()}
        assert values == {"Ada", "Bob", "IBM", "18k"}

    def test_active_domain(self):
        null = LabeledNull("N")
        inst = Instance([fact("R", "a", null)])
        assert inst.active_domain() == {Constant("a"), null}


class TestTransformation:
    def test_substitute_merges_facts(self):
        n1, n2 = LabeledNull("N1"), LabeledNull("N2")
        inst = Instance([fact("R", "a", n1), fact("R", "a", n2)])
        merged = inst.substitute({n1: n2})
        assert len(merged) == 1
        assert fact("R", "a", n2) in merged

    def test_substitute_empty_mapping_copies(self, simple):
        clone = simple.substitute({})
        assert clone == simple
        clone.add(fact("E", "Eve", "HP"))
        assert len(simple) == 3  # original untouched

    def test_copy_independent(self, simple):
        clone = simple.copy()
        clone.discard(fact("S", "Ada", "18k"))
        assert fact("S", "Ada", "18k") in simple

    def test_union(self, simple):
        other = Instance([fact("S", "Bob", "13k")])
        combined = simple.union(other)
        assert len(combined) == 4
        assert len(simple) == 3

    def test_restrict_to(self, simple):
        only_e = simple.restrict_to(["E"])
        assert only_e.relation_names() == ("E",)
        assert len(only_e) == 2

    def test_map_facts(self, simple):
        renamed = simple.map_facts(lambda f: Fact("X" + f.relation, f.args))
        assert renamed.relation_names() == ("XE", "XS")


class TestEquality:
    def test_set_semantics(self):
        a = Instance([fact("R", 1), fact("R", 2)])
        b = Instance([fact("R", 2), fact("R", 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_not_equal_to_other_types(self, simple):
        assert simple != {"not": "an instance"}
