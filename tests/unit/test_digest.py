"""Unit tests for the canonical content digests (repro.serialize.digest)."""

import json

from repro.concrete import ConcreteInstance, concrete_fact
from repro.temporal import Interval
from repro.serialize import (
    chase_request_digest,
    instance_digest,
    setting_digest,
)
from repro.serialize.digest import canonical_json_bytes
from repro.workloads import (
    employment_setting,
    employment_source_concrete,
    exchange_setting_org,
)


def _fact(relation, data, start, end):
    return concrete_fact(relation, *data, interval=Interval(start, end))


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json_bytes({"b": 1, "a": 2}) == canonical_json_bytes(
            {"a": 2, "b": 1}
        )

    def test_compact_separators(self):
        assert canonical_json_bytes({"a": [1, 2]}) == b'{"a":[1,2]}'

    def test_round_trips_as_json(self):
        payload = {"x": ["y", 3], "z": None}
        assert json.loads(canonical_json_bytes(payload)) == payload


class TestInstanceDigest:
    def test_insertion_order_insensitive(self):
        facts = [
            _fact("R", ("a",), 0, 5),
            _fact("R", ("b",), 2, 7),
            _fact("S", ("a", "b"), 1, 3),
        ]
        forward = ConcreteInstance()
        backward = ConcreteInstance()
        for item in facts:
            forward.add(item)
        for item in reversed(facts):
            backward.add(item)
        assert instance_digest(forward) == instance_digest(backward)

    def test_content_sensitive(self):
        one = ConcreteInstance()
        one.add(_fact("R", ("a",), 0, 5))
        two = ConcreteInstance()
        two.add(_fact("R", ("a",), 0, 6))
        assert instance_digest(one) != instance_digest(two)

    def test_stable_hex_sha256(self):
        instance = ConcreteInstance()
        instance.add(_fact("R", ("a",), 0, 5))
        digest = instance_digest(instance)
        assert len(digest) == 64
        assert digest == instance_digest(instance)


class TestSettingDigest:
    def test_distinguishes_settings(self):
        assert setting_digest(employment_setting()) != setting_digest(
            exchange_setting_org()
        )

    def test_stable_across_instances(self):
        assert setting_digest(exchange_setting_org()) == setting_digest(
            exchange_setting_org()
        )


class TestChaseRequestDigest:
    def test_same_inputs_same_digest(self):
        setting = employment_setting()
        source = employment_source_concrete()
        assert chase_request_digest(setting, source) == chase_request_digest(
            setting, source
        )

    def test_parameters_participate(self):
        setting = employment_setting()
        source = employment_source_concrete()
        base = chase_request_digest(setting, source)
        assert base != chase_request_digest(setting, source, variant="oblivious")
        assert base != chase_request_digest(setting, source, normalization="naive")
        assert base != chase_request_digest(setting, source, engine="rescan")

    def test_source_participates(self):
        setting = employment_setting()
        source = employment_source_concrete()
        grown = source.copy()
        grown.add(_fact("Works", ("zoe", "q", 1), 2012, 2013))
        assert chase_request_digest(setting, source) != chase_request_digest(
            setting, grown
        )
