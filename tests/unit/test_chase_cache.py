"""Unit tests for the content-addressed chase cache (repro.server.cache)."""

from repro.concrete import c_chase
from repro.serialize import chase_request_digest
from repro.server.cache import CachedChase, ChaseCache
from repro.workloads import employment_setting, employment_source_concrete

import pytest


@pytest.fixture(scope="module")
def entry() -> CachedChase:
    setting = employment_setting()
    source = employment_source_concrete()
    digest = chase_request_digest(setting, source)
    result = c_chase(source, setting, incremental=True)
    return CachedChase.from_result(digest, result)


class TestCachedChase:
    def test_records_outcome(self, entry):
        assert not entry.failed
        assert entry.failure is None
        assert entry.facts == 5  # Figure 9
        assert entry.steps > 0
        assert entry.target_json["facts"]

    def test_materialize_is_independent(self, entry):
        target_one, state_one = entry.materialize()
        target_two, state_two = entry.materialize()
        assert target_one is not target_two
        assert state_one is not state_two
        assert list(target_one) == list(target_two)
        # mutating one consumer's copy must not leak into the next
        target_one.discard(next(iter(target_one)))
        fresh, _ = entry.materialize()
        assert len(fresh) == entry.facts


class TestChaseCache:
    def test_miss_then_hit(self, entry):
        cache = ChaseCache(max_entries=4)
        assert cache.get(entry.digest) is None
        cache.put(entry)
        assert cache.get(entry.digest) is entry
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self, entry):
        cache = ChaseCache(max_entries=2)
        first = CachedChase(
            digest="a" * 64,
            payload=entry.payload,
            target_json=entry.target_json,
            facts=entry.facts,
            steps=entry.steps,
            failed=False,
            failure=None,
        )
        second = CachedChase(
            digest="b" * 64,
            payload=entry.payload,
            target_json=entry.target_json,
            facts=entry.facts,
            steps=entry.steps,
            failed=False,
            failure=None,
        )
        cache.put(first)
        cache.put(second)
        assert cache.get(first.digest) is first  # refresh: first is now MRU
        cache.put(entry)  # evicts second, the LRU
        assert cache.get(second.digest) is None
        assert cache.get(first.digest) is first
        assert cache.get(entry.digest) is entry
        assert cache.stats()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ChaseCache(max_entries=0)

    def test_len_tracks_entries(self, entry):
        cache = ChaseCache(max_entries=4)
        assert len(cache) == 0
        cache.put(entry)
        assert len(cache) == 1
        cache.put(entry)  # same digest: replaces, not grows
        assert len(cache) == 1
