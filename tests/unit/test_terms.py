"""Unit tests for terms: constants, variables, labeled & annotated nulls."""

import pytest

from repro.errors import InstanceError, TemporalError
from repro.relational.terms import (
    AnnotatedNull,
    Constant,
    LabeledNull,
    Variable,
    is_ground,
    term_sort_key,
)
from repro.temporal import Interval, interval


class TestConstant:
    def test_value_semantics(self):
        assert Constant("Ada") == Constant("Ada")
        assert Constant("Ada") != Constant("Bob")
        assert Constant(1) != Constant("1")

    def test_hashable_requirement(self):
        with pytest.raises(InstanceError):
            Constant(["not", "hashable"])

    def test_kind_flags(self):
        c = Constant("x")
        assert c.is_constant and not c.is_variable and not c.is_null

    def test_str(self):
        assert str(Constant("IBM")) == "IBM"
        assert str(Constant(18)) == "18"


class TestVariable:
    def test_identity_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_empty_name_rejected(self):
        with pytest.raises(InstanceError):
            Variable("")

    def test_kind_flags(self):
        v = Variable("x")
        assert v.is_variable and not v.is_constant and not v.is_null

    def test_not_ground(self):
        assert not is_ground(Variable("x"))
        assert is_ground(Constant(1))
        assert is_ground(LabeledNull("N"))
        assert is_ground(AnnotatedNull("N", interval(0, 2)))


class TestLabeledNull:
    def test_identity_by_name(self):
        assert LabeledNull("N1") == LabeledNull("N1")
        assert LabeledNull("N1") != LabeledNull("N2")

    def test_null_is_not_equal_to_constant(self):
        assert LabeledNull("N") != Constant("N")

    def test_empty_name_rejected(self):
        with pytest.raises(InstanceError):
            LabeledNull("")

    def test_kind_flags(self):
        n = LabeledNull("N")
        assert n.is_null and not n.is_constant and not n.is_variable


class TestAnnotatedNull:
    def test_identity_is_base_and_annotation(self):
        # Fragments of one unknown are DIFFERENT unknowns (Section 4.2).
        a = AnnotatedNull("N", Interval(2, 5))
        b = AnnotatedNull("N", Interval(2, 5))
        c = AnnotatedNull("N", Interval(2, 3))
        assert a == b
        assert a != c

    def test_projection(self):
        # Π_ℓ(N^[8,∞)) = N@ℓ — the paper's sequence-of-nulls reading.
        null = AnnotatedNull("N", interval(8))
        assert null.project(8) == LabeledNull("N@8")
        assert null.project(100) == LabeledNull("N@100")

    def test_projection_outside_annotation_raises(self):
        null = AnnotatedNull("N", Interval(2, 5))
        with pytest.raises(TemporalError):
            null.project(5)
        with pytest.raises(TemporalError):
            null.project(1)

    def test_projections_are_distinct_nulls(self):
        null = AnnotatedNull("N", Interval(0, 3))
        assert len({null.project(p) for p in range(3)}) == 3

    def test_reannotate(self):
        null = AnnotatedNull("N", Interval(2, 8))
        assert null.reannotate(Interval(2, 5)) == AnnotatedNull("N", Interval(2, 5))

    def test_reannotate_outside_raises(self):
        null = AnnotatedNull("N", Interval(2, 8))
        with pytest.raises(TemporalError):
            null.reannotate(Interval(5, 9))

    def test_base_with_at_sign_rejected(self):
        with pytest.raises(InstanceError):
            AnnotatedNull("N@3", Interval(0, 2))

    def test_str(self):
        assert str(AnnotatedNull("N", Interval(8, 10))) == "N^[8, 10)"


class TestSortKey:
    def test_kind_ordering(self):
        terms = [
            Variable("z"),
            AnnotatedNull("M", Interval(0, 2)),
            LabeledNull("N"),
            Constant("a"),
        ]
        ordered = sorted(terms, key=term_sort_key)
        assert [type(t).__name__ for t in ordered] == [
            "Constant",
            "LabeledNull",
            "AnnotatedNull",
            "Variable",
        ]

    def test_within_kind_ordering(self):
        assert term_sort_key(Constant("a")) < term_sort_key(Constant("b"))
        assert term_sort_key(LabeledNull("N1")) < term_sort_key(LabeledNull("N2"))

    def test_mixed_value_types_are_ordered(self):
        # ints and strings sort by type name first, avoiding TypeError.
        ordered = sorted([Constant("a"), Constant(3)], key=term_sort_key)
        assert ordered == [Constant(3), Constant("a")]
