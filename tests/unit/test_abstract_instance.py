"""Unit tests for abstract instances and template facts."""

import pytest

from repro.abstract_view import AbstractInstance, TemplateFact
from repro.errors import InstanceError, TemporalError
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, IntervalSet, interval


def template(rel: str, args, stamp: Interval) -> TemplateFact:
    return TemplateFact(rel, tuple(args), stamp)


class TestTemplateFact:
    def test_constants_and_rigid_nulls_allowed(self):
        template("R", (Constant("a"), LabeledNull("N")), Interval(0, 5))

    def test_annotated_null_must_match_interval(self):
        good = AnnotatedNull("N", Interval(0, 5))
        template("R", (good,), Interval(0, 5))
        with pytest.raises(InstanceError):
            template("R", (good,), Interval(0, 6))

    def test_rigid_null_with_at_sign_rejected(self):
        with pytest.raises(InstanceError, match="@"):
            template("R", (LabeledNull("N@3"),), Interval(0, 5))

    def test_at_keeps_rigid_nulls(self):
        rigid = LabeledNull("N")
        item = template("R", (rigid,), Interval(0, 5))
        assert item.at(0).args == (rigid,)
        assert item.at(4).args == (rigid,)

    def test_at_projects_families(self):
        family = AnnotatedNull("N", Interval(0, 5))
        item = template("R", (family,), Interval(0, 5))
        assert item.at(2).args == (LabeledNull("N@2"),)
        assert item.at(3).args == (LabeledNull("N@3"),)

    def test_at_outside_raises(self):
        item = template("R", (Constant("a"),), Interval(0, 5))
        with pytest.raises(TemporalError):
            item.at(5)


class TestConstructionAndStructure:
    def test_from_snapshot_runs_rigid_semantics(self):
        run = Instance([fact("R", "a", LabeledNull("N"))])
        inst = AbstractInstance.from_snapshot_runs([(run, Interval(0, 3))])
        assert inst.snapshot(0) == inst.snapshot(2) == run

    def test_relation_names(self, abstract_source):
        assert abstract_source.relation_names() == ("E", "S")

    def test_null_classification(self):
        rigid = LabeledNull("N")
        family = AnnotatedNull("M", Interval(0, 2))
        inst = AbstractInstance(
            [
                template("R", (rigid,), Interval(0, 2)),
                template("R", (family,), Interval(0, 2)),
            ]
        )
        assert inst.rigid_nulls() == {rigid}
        assert inst.per_snapshot_nulls() == {family}
        assert not inst.is_complete

    def test_complete(self, abstract_source):
        assert abstract_source.is_complete


class TestTimeline:
    def test_breakpoints_include_zero(self, abstract_source):
        assert abstract_source.breakpoints() == (
            0,
            2012,
            2013,
            2014,
            2015,
            2018,
        )

    def test_regions_partition_all_time(self, abstract_source):
        regions = abstract_source.regions()
        assert regions[0].start == 0
        assert regions[-1].is_unbounded
        for left, right in zip(regions, regions[1:], strict=False):
            assert left.end == right.start

    def test_horizon(self, abstract_source):
        assert abstract_source.horizon() == 2018

    def test_representative_points_one_per_region(self, abstract_source):
        points = abstract_source.representative_points()
        assert len(points) == len(abstract_source.regions())

    def test_rigid_null_span(self):
        rigid = LabeledNull("N")
        inst = AbstractInstance(
            [
                template("R", (rigid,), Interval(0, 2)),
                template("Q", (rigid,), Interval(5, 7)),
            ]
        )
        assert inst.rigid_null_span(rigid) == IntervalSet.of(
            Interval(0, 2), Interval(5, 7)
        )
        assert inst.rigid_null_span(LabeledNull("unused")).is_empty

    def test_empty_instance_timeline(self):
        empty = AbstractInstance.empty()
        assert empty.breakpoints() == (0,)
        assert empty.regions() == (interval(0),)


class TestSnapshots:
    def test_figure1_snapshots(self, abstract_source):
        # Figure 1 of the paper, year by year.
        assert abstract_source.snapshot(2012) == Instance([fact("E", "Ada", "IBM")])
        assert abstract_source.snapshot(2013) == Instance(
            [fact("E", "Ada", "IBM"), fact("S", "Ada", "18k"), fact("E", "Bob", "IBM")]
        )
        assert abstract_source.snapshot(2014) == Instance(
            [
                fact("E", "Ada", "Google"),
                fact("S", "Ada", "18k"),
                fact("E", "Bob", "IBM"),
            ]
        )
        assert abstract_source.snapshot(2018) == Instance(
            [
                fact("E", "Ada", "Google"),
                fact("S", "Ada", "18k"),
                fact("S", "Bob", "13k"),
            ]
        )

    def test_snapshots_prefix(self, abstract_source):
        prefix = abstract_source.snapshots(3)
        assert len(prefix) == 3
        assert all(not snap for snap in prefix)  # nothing before 2012

    def test_templates_at(self, abstract_source):
        covering = abstract_source.templates_at(2013)
        assert len(covering) == 3


class TestComparison:
    def test_same_snapshots_as_positive(self):
        # One fact over [0,4) vs the same fact split in two templates.
        whole = AbstractInstance(
            [template("R", (Constant("a"),), Interval(0, 4))]
        )
        split = AbstractInstance(
            [
                template("R", (Constant("a"),), Interval(0, 2)),
                template("R", (Constant("a"),), Interval(2, 4)),
            ]
        )
        assert whole.same_snapshots_as(split)
        assert whole != split  # representation inequality

    def test_same_snapshots_as_negative(self):
        a = AbstractInstance([template("R", (Constant("a"),), Interval(0, 4))])
        b = AbstractInstance([template("R", (Constant("a"),), Interval(0, 5))])
        assert not a.same_snapshots_as(b)

    def test_rigid_vs_family_differ(self):
        # J1 vs J2 of Figure 2 have different snapshots (N vs N@ℓ).
        rigid = AbstractInstance(
            [template("R", (LabeledNull("N"),), Interval(0, 2))]
        )
        family = AbstractInstance(
            [template("R", (AnnotatedNull("N", Interval(0, 2)),), Interval(0, 2))]
        )
        assert not rigid.same_snapshots_as(family)

    def test_union_and_restrict(self, abstract_source):
        only_e = abstract_source.restrict_to(["E"])
        only_s = abstract_source.restrict_to(["S"])
        assert only_e.union(only_s) == abstract_source
