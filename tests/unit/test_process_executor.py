"""The process-pool region scheduler: parity, crashes, pickling."""

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.abstract_view import AbstractInstance, TemplateFact, abstract_chase, semantics
from repro.chase import NullFactory
from repro.concrete import ConcreteInstance, concrete_fact
from repro.dependencies import DataExchangeSetting
from repro.errors import (
    ChaseFailureError,
    InstanceError,
    RemoteShardError,
    ShardExecutionError,
)
from repro.relational import Constant, Instance, Schema, fact
from repro.temporal import Interval
from repro.workloads import exchange_setting_org, random_org_history


ORG_SETTING = exchange_setting_org()

CLASH_SETTING = DataExchangeSetting.create(
    Schema.of(E=("Name", "Dept")),
    Schema.of(T=("Name", "Dept")),
    st_tgds=["E(x, y) -> T(x, y)"],
    egds=["T(x, y) & T(x, z) -> y = z"],
)


def _org_abstract(people=8, timeline=32, seed=3):
    return semantics(
        random_org_history(people=people, timeline=timeline, seed=seed).instance
    )


def _assert_identical(lhs, rhs):
    """Everything observable matches, null names and traces included."""
    assert lhs.failed == rhs.failed
    assert lhs.failed_region == rhs.failed_region
    assert str(lhs.failure) == str(rhs.failure)
    assert lhs.target == rhs.target
    assert list(lhs.region_results) == list(rhs.region_results)
    for region in rhs.region_results:
        assert (
            lhs.region_results[region].target
            == rhs.region_results[region].target
        ), region
        assert [str(s) for s in lhs.region_results[region].trace.steps] == [
            str(s) for s in rhs.region_results[region].trace.steps
        ], region
    assert {r: vars(v) for r, v in lhs.region_reuse.items()} == {
        r: vars(v) for r, v in rhs.region_reuse.items()
    }


class TestProcessExecutorParity:
    def test_identical_to_serial_sharded(self):
        abstract = _org_abstract()
        serial = abstract_chase(abstract, ORG_SETTING, shards=3)
        procs = abstract_chase(
            abstract, ORG_SETTING, shards=3, executor="processes"
        )
        _assert_identical(procs, serial)
        assert all(report.remote for report in procs.shard_reports)
        assert not any(report.remote for report in serial.shard_reports)

    def test_identical_on_from_scratch_schedule(self):
        abstract = _org_abstract()
        serial = abstract_chase(
            abstract, ORG_SETTING, shards=2, incremental=False
        )
        procs = abstract_chase(
            abstract,
            ORG_SETTING,
            shards=2,
            executor="processes",
            incremental=False,
        )
        _assert_identical(procs, serial)
        assert all(report.reuse is None for report in procs.shard_reports)

    def test_failure_parity(self):
        source = AbstractInstance(
            [
                TemplateFact("E", (Constant("a"), Constant("b")), Interval(0, 4)),
                TemplateFact("E", (Constant("a"), Constant("c")), Interval(2, 6)),
            ]
        )
        serial = abstract_chase(source, CLASH_SETTING, shards=2)
        procs = abstract_chase(
            source, CLASH_SETTING, shards=2, executor="processes"
        )
        _assert_identical(procs, serial)
        assert procs.failed and procs.failed_shard == serial.failed_shard
        with pytest.raises(ChaseFailureError, match="shard 0"):
            procs.unwrap()

    def test_pool_instance_is_reused(self):
        abstract = _org_abstract()
        serial = abstract_chase(abstract, ORG_SETTING, shards=2)
        with ProcessPoolExecutor(max_workers=2) as pool:
            first = abstract_chase(abstract, ORG_SETTING, shards=2, executor=pool)
            second = abstract_chase(abstract, ORG_SETTING, shards=2, executor=pool)
        _assert_identical(first, serial)
        _assert_identical(second, serial)

    def test_shared_base_factory_advances(self):
        abstract = _org_abstract()
        base = NullFactory()
        result = abstract_chase(
            abstract, ORG_SETTING, null_factory=base, executor="processes"
        )
        assert result.succeeded
        assert base.issued == result.shard_reports[0].nulls_issued > 0
        # A second run off the same factory must not repeat null names.
        again = abstract_chase(abstract, ORG_SETTING, null_factory=base)
        first_nulls = {n.base for n in result.target.per_snapshot_nulls()}
        second_nulls = {n.base for n in again.target.per_snapshot_nulls()}
        assert first_nulls.isdisjoint(second_nulls)

    def test_workers_validation(self):
        abstract = _org_abstract()
        with pytest.raises(InstanceError, match="workers"):
            abstract_chase(
                abstract, ORG_SETTING, executor="processes", workers=0
            )

    def test_unknown_executor_names_processes(self):
        abstract = _org_abstract()
        with pytest.raises(InstanceError, match="processes"):
            abstract_chase(abstract, ORG_SETTING, executor="fibers")


class TestWorkerCrash:
    def test_crash_surfaces_shard_index(self, monkeypatch):
        # workers=1 serializes the two shards, so shard 0 completes
        # before the crash hook kills shard 1's worker — the error must
        # name shard 1 and keep shard 0's report.
        monkeypatch.setenv("REPRO_SHARD_CRASH", "1")
        abstract = _org_abstract()
        result = abstract_chase(
            abstract, ORG_SETTING, shards=2, executor="processes", workers=1
        )
        assert result.failed
        assert result.error is not None
        assert result.error.shard == 1
        assert result.failed_shard == 1
        assert "worker process died" in str(result.error)
        assert result.shard_reports[0].regions > 0
        assert result.shard_reports[1].remote
        with pytest.raises(ShardExecutionError, match="shard 1"):
            result.unwrap()
        # The first shard's regions merged; the dead shard's are absent.
        assert len(result.region_results) > 0

    def test_crash_leaves_no_shared_memory_segments(self, monkeypatch):
        # Regression: a worker hard-killed mid-shard (REPRO_SHARD_CRASH)
        # on the shared-memory wire path must not leak its task or
        # outcome segments — the parent's finally-sweep unlinks every
        # name it assigned, whether or not the worker ever published.
        from repro.serialize import shm

        if not shm.available():  # pragma: no cover — no shm filesystem
            pytest.skip("platform has no shared-memory support")
        monkeypatch.setenv("REPRO_SHM", "on")
        monkeypatch.setenv("REPRO_SHARD_CRASH", "1")
        shm_dir = "/dev/shm"
        can_list = os.path.isdir(shm_dir)
        before = set(os.listdir(shm_dir)) if can_list else set()
        abstract = _org_abstract()
        result = abstract_chase(
            abstract, ORG_SETTING, shards=2, executor="processes", workers=1
        )
        assert result.failed
        assert result.failed_shard == 1
        assert result.shard_reports[0].regions > 0  # shard 0 decoded fine
        with pytest.raises(ShardExecutionError, match="shard 1"):
            result.unwrap()
        if can_list:
            leaked = {
                name
                for name in set(os.listdir(shm_dir)) - before
                if name.startswith("tdx")
            }
            assert leaked == set()

    def test_crashed_run_error_pickles(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_CRASH", "0")
        abstract = _org_abstract()
        result = abstract_chase(
            abstract, ORG_SETTING, shards=1, executor="processes"
        )
        error = pickle.loads(pickle.dumps(result.error))
        assert isinstance(error, ShardExecutionError)
        assert error.shard == 0


class TestPickleSupport:
    def test_instance_roundtrip_drops_and_rebuilds_caches(self):
        instance = Instance([fact("E", "ada", "ibm"), fact("E", "bob", "hp")])
        # Force the lazy index so the pickle has something to drop.
        assert instance.lookup("E", {0: Constant("ada")})
        clone = pickle.loads(pickle.dumps(instance))
        assert clone == instance
        assert clone.lookup("E", {0: Constant("ada")}) == instance.lookup(
            "E", {0: Constant("ada")}
        )

    def test_concrete_instance_roundtrip(self):
        instance = ConcreteInstance(
            [
                concrete_fact("E", "ada", "ibm", interval=Interval(0, 5)),
                concrete_fact("S", "ada", "10k", interval=Interval(2, 7)),
            ]
        )
        assert instance.lifted()  # warm the cached view
        clone = pickle.loads(pickle.dumps(instance))
        assert clone == instance
        assert clone.lifted() == instance.lifted()

    def test_fact_state_excludes_caches(self):
        item = fact("E", "ada", "ibm")
        hash(item)
        item.sort_key()
        state = item.__getstate__()
        assert state == ("E", item.args)
        clone = pickle.loads(pickle.dumps(item))
        assert clone == item and hash(clone) == hash(item)
        assert clone.sort_key() == item.sort_key()

    def test_null_factory_transcript_survives(self):
        factory = NullFactory()
        factory.fresh()
        factory.fresh()
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.fresh().name == factory.fresh().name
        assert clone.fresh_annotated(Interval(0, 2)) == factory.fresh_annotated(
            Interval(0, 2)
        )
        assert clone.for_shard(1, 2).prefix == factory.for_shard(1, 2).prefix

    def test_remote_shard_error_pickles(self):
        error = pickle.loads(
            pickle.dumps(RemoteShardError("ValueError", "boom"))
        )
        assert error.exc_type == "ValueError"
        assert error.message == "boom"

    def test_shard_execution_error_with_unpicklable_cause(self):
        class Local(Exception):
            pass

        error = ShardExecutionError(2, Interval(0, 3), Local("nope"))
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard == 2
        assert clone.region == Interval(0, 3)
        assert isinstance(clone.__cause__, RemoteShardError)
        assert clone.__cause__.exc_type == "Local"
