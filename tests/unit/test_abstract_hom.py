"""Unit tests for abstract homomorphisms (Definition 3, Example 2)."""

from repro.abstract_view import (
    AbstractInstance,
    TemplateFact,
    combined_regions,
    find_abstract_homomorphism,
    has_abstract_homomorphism,
    homomorphically_equivalent,
)
from repro.relational import Constant, LabeledNull
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, interval


def rigid_instance(name: str, stamp: Interval) -> AbstractInstance:
    """Emp(Ada, IBM, N) with the SAME null at every covered snapshot."""
    return AbstractInstance(
        [
            TemplateFact(
                "Emp",
                (Constant("Ada"), Constant("IBM"), LabeledNull(name)),
                stamp,
            )
        ]
    )


def family_instance(name: str, stamp: Interval) -> AbstractInstance:
    """Emp(Ada, IBM, M_ℓ) with a fresh null per snapshot."""
    return AbstractInstance(
        [
            TemplateFact(
                "Emp",
                (Constant("Ada"), Constant("IBM"), AnnotatedNull(name, stamp)),
                stamp,
            )
        ]
    )


class TestExample2:
    """The paper's Example 2: J1 (rigid N) vs J2 (per-snapshot M1, M2)."""

    def test_no_hom_from_rigid_to_family(self):
        j1 = rigid_instance("N", Interval(0, 2))
        j2 = family_instance("M", Interval(0, 2))
        assert not has_abstract_homomorphism(j1, j2)

    def test_hom_from_family_to_rigid(self):
        j1 = rigid_instance("N", Interval(0, 2))
        j2 = family_instance("M", Interval(0, 2))
        assert has_abstract_homomorphism(j2, j1)

    def test_not_equivalent(self):
        j1 = rigid_instance("N", Interval(0, 2))
        j2 = family_instance("M", Interval(0, 2))
        assert not homomorphically_equivalent(j1, j2)

    def test_single_snapshot_rigid_maps_to_family(self):
        # With only ONE snapshot, condition 2 is vacuous: N may map to M@0.
        j1 = rigid_instance("N", Interval(0, 1))
        j2 = family_instance("M", Interval(0, 1))
        assert has_abstract_homomorphism(j1, j2)
        assert homomorphically_equivalent(j1, j2)


class TestBasicMappings:
    def test_identity(self, abstract_source):
        assert has_abstract_homomorphism(abstract_source, abstract_source)

    def test_null_to_constant(self):
        unknown = rigid_instance("N", Interval(0, 3))
        known = AbstractInstance(
            [
                TemplateFact(
                    "Emp",
                    (Constant("Ada"), Constant("IBM"), Constant("18k")),
                    Interval(0, 3),
                )
            ]
        )
        hom = find_abstract_homomorphism(unknown, known)
        assert hom is not None
        assert hom.rigid_mapping[LabeledNull("N")] == Constant("18k")
        assert not has_abstract_homomorphism(known, unknown)

    def test_family_to_constant(self):
        unknown = family_instance("M", Interval(0, 3))
        known = AbstractInstance(
            [
                TemplateFact(
                    "Emp",
                    (Constant("Ada"), Constant("IBM"), Constant("18k")),
                    Interval(0, 3),
                )
            ]
        )
        assert has_abstract_homomorphism(unknown, known)

    def test_constants_must_match(self):
        a = AbstractInstance(
            [TemplateFact("R", (Constant("a"),), Interval(0, 2))]
        )
        b = AbstractInstance(
            [TemplateFact("R", (Constant("b"),), Interval(0, 2))]
        )
        assert not has_abstract_homomorphism(a, b)

    def test_temporal_containment_required(self):
        short = rigid_instance("N", Interval(0, 2))
        long = rigid_instance("M", Interval(0, 5))
        # long covers snapshots 2-4 where short has nothing to map onto...
        # direction matters: short → long works, long → short does not.
        assert has_abstract_homomorphism(short, long)
        assert not has_abstract_homomorphism(long, short)

    def test_empty_source_maps_anywhere(self, abstract_source):
        assert has_abstract_homomorphism(AbstractInstance.empty(), abstract_source)

    def test_unbounded_instances(self):
        a = family_instance("N", interval(3))
        b = family_instance("M", interval(3))
        assert homomorphically_equivalent(a, b)

    def test_unbounded_vs_bounded(self):
        a = family_instance("N", interval(3))
        b = family_instance("M", Interval(3, 100))
        assert not has_abstract_homomorphism(a, b)
        assert has_abstract_homomorphism(b, a)


class TestGlobalConsistency:
    def test_rigid_null_shared_across_regions(self):
        # N occurs in two disjoint regions; its image must be consistent.
        source = AbstractInstance(
            [
                TemplateFact("R", (LabeledNull("N"),), Interval(0, 2)),
                TemplateFact("Q", (LabeledNull("N"),), Interval(5, 7)),
            ]
        )
        consistent = AbstractInstance(
            [
                TemplateFact("R", (Constant("v"),), Interval(0, 2)),
                TemplateFact("Q", (Constant("v"),), Interval(5, 7)),
            ]
        )
        inconsistent = AbstractInstance(
            [
                TemplateFact("R", (Constant("v"),), Interval(0, 2)),
                TemplateFact("Q", (Constant("w"),), Interval(5, 7)),
            ]
        )
        assert has_abstract_homomorphism(source, consistent)
        assert not has_abstract_homomorphism(source, inconsistent)

    def test_backtracking_over_rigid_choices(self):
        # In region [0,2), N could map to v or w; only w works at [5,7).
        source = AbstractInstance(
            [
                TemplateFact("R", (LabeledNull("N"),), Interval(0, 2)),
                TemplateFact("Q", (LabeledNull("N"),), Interval(5, 7)),
            ]
        )
        target = AbstractInstance(
            [
                TemplateFact("R", (Constant("v"),), Interval(0, 2)),
                TemplateFact("R", (Constant("w"),), Interval(0, 2)),
                TemplateFact("Q", (Constant("w"),), Interval(5, 7)),
            ]
        )
        hom = find_abstract_homomorphism(source, target)
        assert hom is not None
        assert hom.rigid_mapping[LabeledNull("N")] == Constant("w")

    def test_two_rigid_nulls_may_merge(self):
        source = AbstractInstance(
            [
                TemplateFact("R", (LabeledNull("N"), LabeledNull("M")), Interval(0, 2)),
            ]
        )
        target = AbstractInstance(
            [TemplateFact("R", (Constant("v"), Constant("v")), Interval(0, 2))]
        )
        assert has_abstract_homomorphism(source, target)


class TestCombinedRegions:
    def test_partition_respects_both(self, abstract_source):
        other = AbstractInstance(
            [TemplateFact("X", (Constant("z"),), Interval(2016, 2020))]
        )
        regions = combined_regions(abstract_source, other)
        starts = [r.start for r in regions]
        assert 2016 in starts and 2020 in starts and 2013 in starts
        assert regions[-1].is_unbounded

    def test_tail_region_always_present(self):
        empty_pair = combined_regions(AbstractInstance.empty(), AbstractInstance.empty())
        assert empty_pair == (interval(0),)
