"""Unit tests for the delta-driven engine core and the region scheduler.

Covers the pieces the chase procedures compose: in-place substitution
with delta reporting (both instance kinds), semi-naive equation
enumeration, the shard-partitioned null factory (the regression target:
no name collisions across shards, ever), and the scheduler's
deterministic merge including per-shard reports.
"""

from __future__ import annotations

import pytest

from repro.abstract_view import abstract_chase, semantics
from repro.abstract_view.hom import homomorphically_equivalent
from repro.chase.nulls import NullFactory
from repro.concrete import ConcreteInstance, concrete_fact
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.relational.formulas import Atom
from repro.relational.homomorphism import (
    iter_egd_equations,
    iter_egd_equations_delta,
    match_atom_against_fact,
)
from repro.relational.terms import AnnotatedNull, Variable
from repro.temporal import Interval
from repro.workloads import exchange_setting_join, random_employment_history


class TestSubstituteInPlace:
    def test_rewrites_only_affected_facts_and_returns_delta(self):
        n1, n2 = LabeledNull("N1"), LabeledNull("N2")
        instance = Instance(
            [fact("R", "a", n1), fact("R", "b", n2), fact("R", "c", "k")]
        )
        # Build the index first so the targeted path is exercised.
        instance.lookup_ordered("R", {1: n1})
        added = instance.substitute_in_place({n1: Constant("v")})
        assert added == [fact("R", "a", "v")]
        assert instance == Instance(
            [fact("R", "a", "v"), fact("R", "b", n2), fact("R", "c", "k")]
        )

    def test_merging_images_report_empty_delta(self):
        n1 = LabeledNull("N1")
        instance = Instance([fact("R", "a", n1), fact("R", "a", "v")])
        added = instance.substitute_in_place({n1: Constant("v")})
        assert added == []
        assert instance == Instance([fact("R", "a", "v")])

    def test_equivalent_to_functional_substitute(self):
        n1, n2 = LabeledNull("N1"), LabeledNull("N2")
        instance = Instance(
            [fact("R", n1, n2), fact("S", n2, "x"), fact("T", "y", "z")]
        )
        mapping = {n1: Constant("a"), n2: Constant("b")}
        expected = instance.substitute(mapping)
        instance.substitute_in_place(mapping)
        assert instance == expected

    def test_index_stays_consistent_after_in_place_substitution(self):
        n1 = LabeledNull("N1")
        instance = Instance([fact("R", "a", n1), fact("R", "b", n1)])
        instance.lookup_ordered("R", {1: n1})  # force the index
        instance.substitute_in_place({n1: Constant("v")})
        assert list(instance.lookup_ordered("R", {1: Constant("v")})) == [
            fact("R", "a", "v"),
            fact("R", "b", "v"),
        ]
        assert instance.lookup_ordered("R", {1: n1}) == ()

    def test_concrete_in_place_substitution_keeps_lifted_view(self):
        stamp = Interval(0, 5)
        null = AnnotatedNull("N1", stamp)
        instance = ConcreteInstance(
            [
                concrete_fact("R", "a", null, interval=stamp),
                concrete_fact("R", "b", "k", interval=stamp),
            ]
        )
        instance.lifted()
        added = instance.substitute_in_place({null: Constant("v")})
        assert [str(item) for item in added] == ["R+(a, v, [0, 5))"]
        assert instance == ConcreteInstance(
            [
                concrete_fact("R", "a", "v", interval=stamp),
                concrete_fact("R", "b", "k", interval=stamp),
            ]
        )
        # The lifted view was maintained, not rebuilt: probing it agrees.
        assert len(instance.lifted().facts_of("R")) == 2


class TestDeltaEnumeration:
    ATOMS = (
        Atom("R", (Variable("x"), Variable("y"))),
        Atom("R", (Variable("x"), Variable("y2"))),
    )

    def test_match_atom_against_fact_respects_repeats(self):
        atom = Atom("R", (Variable("x"), Variable("x")))
        assert match_atom_against_fact(atom, fact("R", "a", "a")) is not None
        assert match_atom_against_fact(atom, fact("R", "a", "b")) is None

    def test_delta_equations_cover_exactly_matches_touching_delta(self):
        n1, n2, n3 = (LabeledNull(f"N{i}") for i in range(1, 4))
        old = [fact("R", "a", n1), fact("R", "b", n2)]
        instance = Instance(old)
        new_fact = fact("R", "a", n3)
        instance.add(new_fact)
        x, y, y2 = Variable("x"), Variable("y"), Variable("y2")
        full = set(iter_egd_equations(self.ATOMS, y, y2, instance))
        delta = set(
            iter_egd_equations_delta(self.ATOMS, y, y2, instance, [new_fact])
        )
        # Delta equations = full equations minus the ones among old facts.
        old_only = set(iter_egd_equations(self.ATOMS, y, y2, Instance(old)))
        assert delta == full - old_only
        assert (n1, n3) in delta and (n3, n1) in delta
        assert (n1, n1) not in delta


class TestShardedNullFactory:
    def test_shard_namespaces_never_collide(self):
        """Regression: names issued by different shards (and the base
        factory) must be pairwise distinct regardless of interleaving."""
        base = NullFactory()
        shards = [base.for_shard(index) for index in range(4)]
        issued: list[str] = []
        for _round_index in range(50):
            for factory in shards:
                issued.append(factory.fresh_name())
            issued.append(base.fresh_name())
        assert len(issued) == len(set(issued))

    def test_shard_names_are_deterministic(self):
        factory = NullFactory().for_shard(2)
        assert factory.fresh_name() == "Ns2_1"
        assert factory.fresh_name() == "Ns2_2"

    def test_nested_sharding_stays_collision_free(self):
        base = NullFactory(prefix="M")
        inner = [base.for_shard(0).for_shard(i) for i in range(2)]
        names = {f.fresh_name() for f in inner} | {base.for_shard(0).fresh_name()}
        assert len(names) == 3

    def test_repeated_sharded_runs_on_one_factory_stay_disjoint(self):
        """Regression: two sharded abstract chases sharing one base
        factory must not reissue the same null names."""
        from repro.abstract_view import abstract_chase, semantics
        from repro.workloads import (
            exchange_setting_join,
            random_employment_history,
        )

        setting = exchange_setting_join()
        abstract = semantics(
            random_employment_history(people=2, timeline=12, seed=3).instance
        )
        shared = NullFactory()
        first = abstract_chase(
            abstract, setting, null_factory=shared, shards=2
        )
        second = abstract_chase(
            abstract, setting, null_factory=shared, shards=2
        )
        first_names = {n.base for n in first.target.per_snapshot_nulls()}
        second_names = {n.base for n in second.target.per_snapshot_nulls()}
        assert first_names and second_names
        assert first_names.isdisjoint(second_names)


class TestRegionScheduler:
    SETTING = exchange_setting_join()

    def _abstract(self):
        workload = random_employment_history(people=3, timeline=20, seed=5)
        return semantics(workload.instance)

    def test_sharded_result_equivalent_to_serial(self):
        abstract = self._abstract()
        serial = abstract_chase(abstract, self.SETTING)
        for shards in (2, 3, 16):
            sharded = abstract_chase(abstract, self.SETTING, shards=shards)
            assert sharded.succeeded
            assert homomorphically_equivalent(sharded.target, serial.target)
            assert set(sharded.region_results) == set(serial.region_results)

    def test_sharded_null_names_disjoint_across_shards(self):
        abstract = self._abstract()
        result = abstract_chase(abstract, self.SETTING, shards=3)
        per_shard: dict[str, set[str]] = {}
        for null in result.target.per_snapshot_nulls():
            assert null.base.startswith("Ns")
            shard_tag = null.base.split("_", 1)[0]
            per_shard.setdefault(shard_tag, set()).add(null.base)
        assert len(per_shard) > 1  # the work really was partitioned
        for tag, names in per_shard.items():
            for other_tag, other_names in per_shard.items():
                if tag != other_tag:
                    assert names.isdisjoint(other_names)

    def test_threads_executor_matches_serial_executor(self):
        abstract = self._abstract()
        serial = abstract_chase(abstract, self.SETTING, shards=3)
        threaded = abstract_chase(
            abstract, self.SETTING, shards=3, executor="threads"
        )
        assert threaded.target == serial.target
        assert len(threaded.shard_reports) == len(serial.shard_reports) == 3

    def test_shard_reports_account_for_all_regions(self):
        abstract = self._abstract()
        result = abstract_chase(abstract, self.SETTING, shards=4)
        assert sum(r.regions for r in result.shard_reports) == len(
            abstract.regions()
        )
        assert all(r.seconds >= 0 for r in result.shard_reports)

    def test_shards_one_is_byte_identical_to_legacy(self):
        abstract = self._abstract()
        one = abstract_chase(abstract, self.SETTING, shards=1)
        # Null names come from the single shared factory: N1, N2, …
        names = {null.base for null in one.target.per_snapshot_nulls()}
        assert all(name.startswith("N") and "_" not in name for name in names)

    def test_invalid_shards_and_executor_rejected(self):
        from repro.errors import InstanceError

        abstract = self._abstract()
        with pytest.raises(InstanceError):
            abstract_chase(abstract, self.SETTING, shards=0)
        with pytest.raises(InstanceError):
            abstract_chase(
                abstract, self.SETTING, shards=2, executor="bogus"
            )
