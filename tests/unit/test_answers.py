"""Unit tests for temporal answer containers."""

from repro.query.answers import ConcreteAnswerSet, TemporalAnswerSet
from repro.relational import Constant
from repro.temporal import Interval, IntervalSet, interval


def row(*values):
    return tuple(Constant(v) for v in values)


class TestConcreteAnswerSet:
    def test_set_semantics(self):
        a = ConcreteAnswerSet([(row("x"), Interval(1, 3))])
        b = ConcreteAnswerSet([(row("x"), Interval(1, 3))])
        assert a == b and len(a) == 1

    def test_tuples_projection(self):
        answers = ConcreteAnswerSet(
            [(row("x"), Interval(1, 3)), (row("x"), Interval(5, 7))]
        )
        assert answers.tuples() == {row("x")}

    def test_to_temporal_coalesces(self):
        answers = ConcreteAnswerSet(
            [
                (row("x"), Interval(1, 3)),
                (row("x"), Interval(3, 7)),
                (row("y"), Interval(0, 2)),
            ]
        )
        temporal = answers.to_temporal()
        assert temporal.support(row("x")) == IntervalSet.of(Interval(1, 7))
        assert temporal.support(row("y")) == IntervalSet.of(Interval(0, 2))

    def test_iteration_deterministic(self):
        answers = ConcreteAnswerSet(
            [(row("b"), Interval(1, 3)), (row("a"), Interval(1, 3))]
        )
        listed = [item for item, _ in answers]
        assert listed == [row("a"), row("b")]


class TestTemporalAnswerSet:
    def test_at_recovers_snapshot_answers(self):
        answers = TemporalAnswerSet(
            {
                row("x"): IntervalSet.of(Interval(1, 4)),
                row("y"): IntervalSet.of(interval(3)),
            }
        )
        assert answers.at(2) == {row("x")}
        assert answers.at(3) == {row("x"), row("y")}
        assert answers.at(100) == {row("y")}

    def test_empty_supports_dropped(self):
        answers = TemporalAnswerSet({row("x"): IntervalSet.empty()})
        assert len(answers) == 0 and not answers

    def test_support_of_absent_tuple(self):
        answers = TemporalAnswerSet({})
        assert answers.support(row("zzz")).is_empty

    def test_union(self):
        a = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(1, 3))})
        b = TemporalAnswerSet(
            {
                row("x"): IntervalSet.of(Interval(3, 5)),
                row("y"): IntervalSet.of(Interval(0, 1)),
            }
        )
        merged = a.union(b)
        assert merged.support(row("x")) == IntervalSet.of(Interval(1, 5))
        assert row("y") in merged

    def test_intersect(self):
        a = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(1, 5))})
        b = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(3, 9))})
        common = a.intersect(b)
        assert common.support(row("x")) == IntervalSet.of(Interval(3, 5))

    def test_intersect_disjoint_drops_tuple(self):
        a = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(1, 2))})
        b = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(5, 9))})
        assert len(a.intersect(b)) == 0

    def test_subset(self):
        small = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(2, 4))})
        big = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(0, 9))})
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)

    def test_equality_canonical(self):
        a = TemporalAnswerSet(
            {row("x"): IntervalSet.of(Interval(1, 3), Interval(3, 5))}
        )
        b = TemporalAnswerSet({row("x"): IntervalSet.of(Interval(1, 5))})
        assert a == b
        assert hash(a) == hash(b)
