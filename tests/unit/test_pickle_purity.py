"""Regression tests: cached-state classes pickle identity fields only.

PR 5's replay bug was a cached salted ``Interval`` hash crossing a
process boundary inside a pickle; these tests pin the fix pattern for
every class the invariant linter (TDX001) flags as caching derived
state: warming the caches must not change the pickled bytes, and the
unpickled object must come back with its caches unset.
"""

import pickle

from repro.abstract_view.abstract_instance import TemplateFact
from repro.dependencies.dependency import EGD, SourceToTargetTGD
from repro.dependencies.mapping import DataExchangeSetting
from repro.relational.formulas import Atom, TemporalConjunction
from repro.relational.schema import Schema
from repro.relational.terms import Constant, Variable
from repro.temporal.interval import Interval


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestTemplateFact:
    def make(self) -> TemplateFact:
        return TemplateFact("Emp", (Constant("ada"),), Interval(3, 7))

    def test_warm_cache_not_pickled(self):
        fresh = self.make()
        warmed = self.make()
        warmed.at(5)  # populates the point-independent _pointless cache
        assert warmed._pointless is not None
        assert pickle.dumps(warmed) == pickle.dumps(fresh)

    def test_roundtrip_resets_cache_and_preserves_identity(self):
        warmed = self.make()
        warmed.at(5)
        clone = roundtrip(warmed)
        assert clone._pointless is None
        assert clone == warmed
        assert clone.at(5) == warmed.at(5)


class TestAtom:
    def make(self) -> Atom:
        return Atom("R", (Variable("x"), Constant(1)))

    def test_warm_cache_not_pickled(self):
        fresh = self.make()
        warmed = self.make()
        object.__setattr__(warmed, "_search_plan", ("plan",))
        assert pickle.dumps(warmed) == pickle.dumps(fresh)

    def test_roundtrip_resets_cache(self):
        warmed = self.make()
        object.__setattr__(warmed, "_search_plan", ("plan",))
        clone = roundtrip(warmed)
        assert clone._search_plan is None
        assert clone == warmed


class TestTemporalConjunction:
    def make(self) -> TemporalConjunction:
        return TemporalConjunction.shared(
            (Atom("R", (Variable("x"),)), Atom("S", (Variable("x"),)))
        )

    def test_warm_cache_not_pickled(self):
        fresh = self.make()
        warmed = self.make()
        warmed.normalized()  # populates _normalized
        assert warmed._normalized is not None
        assert pickle.dumps(warmed) == pickle.dumps(fresh)

    def test_roundtrip_resets_cache(self):
        warmed = self.make()
        warmed.normalized()
        clone = roundtrip(warmed)
        assert clone._normalized is None
        assert clone._lifted_atoms is None
        assert clone == warmed
        assert clone.normalized() == warmed.normalized()


class TestDependencies:
    def tgd(self) -> SourceToTargetTGD:
        return SourceToTargetTGD.parse("E(n,c) -> Emp(n,c,s)", name="st1")

    def egd(self) -> EGD:
        return EGD.parse("Emp(n,c,s) & Emp(n,c,s2) -> s = s2", name="e1")

    def test_tgd_warm_cache_not_pickled(self):
        fresh, warmed = self.tgd(), self.tgd()
        warmed.lift_lhs()  # populates _lifted_lhs
        assert warmed._lifted_lhs is not None
        assert pickle.dumps(warmed) == pickle.dumps(fresh)

    def test_tgd_roundtrip_resets_caches(self):
        warmed = self.tgd()
        warmed.lift_lhs()
        clone = roundtrip(warmed)
        assert clone._lifted_lhs is None
        assert clone._lifted_rhs is None
        assert clone == warmed
        assert str(clone.lift_lhs()) == str(warmed.lift_lhs())

    def test_egd_warm_cache_not_pickled(self):
        fresh, warmed = self.egd(), self.egd()
        warmed.lift_lhs()
        assert warmed._lifted_lhs is not None
        assert pickle.dumps(warmed) == pickle.dumps(fresh)

    def test_egd_roundtrip_resets_cache(self):
        warmed = self.egd()
        warmed.lift_lhs()
        clone = roundtrip(warmed)
        assert clone._lifted_lhs is None
        assert clone == warmed


class TestDataExchangeSetting:
    def make(self) -> DataExchangeSetting:
        return DataExchangeSetting.create(
            Schema.of(E=("n", "c")),
            Schema.of(Emp=("n", "c", "s")),
            st_tgds=["E(n,c) -> Emp(n,c,s)"],
            egds=["Emp(n,c,s) & Emp(n,c,s2) -> s = s2"],
        )

    def test_injected_engine_caches_not_pickled(self):
        fresh = self.make()
        warmed = self.make()
        # The chase engines stash compiled task lists in the setting's
        # __dict__ (see chase/standard.py and concrete/cchase.py).
        object.__setattr__(warmed, "_snapshot_egd_tasks", ("compiled",))
        object.__setattr__(warmed, "_concrete_egd_tasks", ("compiled",))
        assert pickle.dumps(warmed) == pickle.dumps(fresh)
        clone = roundtrip(warmed)
        assert "_snapshot_egd_tasks" not in clone.__dict__
        assert "_concrete_egd_tasks" not in clone.__dict__
        assert clone == warmed
