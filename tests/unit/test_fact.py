"""Unit tests for snapshot-level facts."""

import pytest

from repro.errors import InstanceError
from repro.relational import Constant, Fact, LabeledNull, Variable, fact
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval


class TestConstruction:
    def test_builder_wraps_constants(self):
        item = fact("E", "Ada", "IBM")
        assert item.relation == "E"
        assert item.args == (Constant("Ada"), Constant("IBM"))

    def test_builder_passes_terms_through(self):
        null = LabeledNull("N")
        item = fact("Emp", "Ada", null)
        assert item.args == (Constant("Ada"), null)

    def test_variables_rejected(self):
        with pytest.raises(InstanceError):
            Fact("E", (Variable("x"),))
        with pytest.raises(InstanceError):
            fact("E", Variable("x"))

    def test_empty_relation_rejected(self):
        with pytest.raises(InstanceError):
            fact("")

    def test_nullary_fact_allowed(self):
        assert fact("Alive").arity == 0

    def test_value_semantics(self):
        assert fact("E", "a") == fact("E", "a")
        assert fact("E", "a") != fact("F", "a")
        assert fact("E", "a") != fact("E", "a", "b")


class TestAccessors:
    def test_nulls_and_constants(self):
        null = LabeledNull("N")
        anull = AnnotatedNull("M", Interval(0, 2))
        item = fact("R", "a", null, anull)
        assert list(item.nulls()) == [null, anull]
        assert list(item.constants()) == [Constant("a")]
        assert item.has_nulls()

    def test_no_nulls(self):
        assert not fact("R", "a", "b").has_nulls()

    def test_arity(self):
        assert fact("R", 1, 2, 3).arity == 3


class TestTransformation:
    def test_substitute(self):
        null = LabeledNull("N")
        item = fact("R", "a", null)
        replaced = item.substitute({null: Constant("b")})
        assert replaced == fact("R", "a", "b")

    def test_substitute_leaves_unmapped(self):
        item = fact("R", "a", LabeledNull("N"))
        assert item.substitute({LabeledNull("M"): Constant("x")}) == item

    def test_map_args(self):
        item = fact("R", "a", "b")
        upper = item.map_args(
            lambda t: Constant(t.value.upper()) if isinstance(t, Constant) else t
        )
        assert upper == fact("R", "A", "B")

    def test_sort_key_deterministic(self):
        facts = [fact("R", "b"), fact("R", "a"), fact("Q", "z")]
        ordered = sorted(facts, key=Fact.sort_key)
        assert ordered == [fact("Q", "z"), fact("R", "a"), fact("R", "b")]


class TestRendering:
    def test_str(self):
        assert str(fact("E", "Ada", "IBM")) == "E(Ada, IBM)"
        assert str(fact("Emp", "Ada", LabeledNull("N"))) == "Emp(Ada, N)"
