"""Unit + differential tests for the relational algebra evaluator."""

import pytest

from repro.errors import FormulaError, InstanceError
from repro.relational import (
    Constant,
    Instance,
    LabeledNull,
    fact,
    parse_conjunction,
)
from repro.relational.algebra import (
    Relation,
    answers_via_algebra,
    evaluate_conjunction,
)
from repro.relational.homomorphism import find_homomorphisms


@pytest.fixture
def employment() -> Instance:
    return Instance(
        [
            fact("E", "Ada", "IBM"),
            fact("E", "Bob", "IBM"),
            fact("E", "Cyd", "HP"),
            fact("S", "Ada", "18k"),
            fact("S", "Cyd", "21k"),
            fact("M", "Ada", "Bob"),
        ]
    )


class TestRelationOperators:
    def test_select_eq(self, employment):
        rel = Relation.from_instance(employment, "E")
        ibm = rel.select_eq("_2", Constant("IBM"))
        assert len(ibm) == 2

    def test_select_same(self):
        rel = Relation.from_rows(
            ["a", "b"],
            [(Constant(1), Constant(1)), (Constant(1), Constant(2))],
        )
        assert len(rel.select_same("a", "b")) == 1

    def test_project_collapses_duplicates(self, employment):
        rel = Relation.from_instance(employment, "E")
        companies = rel.project(["_2"])
        assert len(companies) == 2  # IBM, HP

    def test_project_reorders(self):
        rel = Relation.from_rows(["a", "b"], [(Constant(1), Constant(2))])
        flipped = rel.project(["b", "a"])
        assert flipped.columns == ("b", "a")
        assert (Constant(2), Constant(1)) in flipped.rows

    def test_rename(self, employment):
        rel = Relation.from_instance(employment, "E").rename({"_1": "name"})
        assert rel.columns == ("name", "_2")

    def test_unknown_column_rejected(self, employment):
        rel = Relation.from_instance(employment, "E")
        with pytest.raises(InstanceError):
            rel.project(["nope"])

    def test_natural_join_on_shared_column(self, employment):
        e = Relation.from_instance(employment, "E").rename(
            {"_1": "n", "_2": "c"}
        )
        s = Relation.from_instance(employment, "S").rename(
            {"_1": "n", "_2": "sal"}
        )
        joined = e.natural_join(s)
        assert joined.columns == ("n", "c", "sal")
        assert len(joined) == 2  # Ada and Cyd

    def test_natural_join_without_shared_is_product(self):
        a = Relation.from_rows(["x"], [(Constant(1),), (Constant(2),)])
        b = Relation.from_rows(["y"], [(Constant(3),)])
        assert len(a.natural_join(b)) == 2

    def test_union_and_difference(self):
        a = Relation.from_rows(["x"], [(Constant(1),), (Constant(2),)])
        b = Relation.from_rows(["x"], [(Constant(2),), (Constant(3),)])
        assert len(a.union(b)) == 3
        assert len(a.difference(b)) == 1

    def test_union_header_mismatch_rejected(self):
        a = Relation.from_rows(["x"], [])
        b = Relation.from_rows(["y"], [])
        with pytest.raises(InstanceError):
            a.union(b)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(InstanceError):
            Relation.from_rows(["x", "x"], [])

    def test_row_width_validated(self):
        with pytest.raises(InstanceError):
            Relation.from_rows(["x"], [(Constant(1), Constant(2))])


class TestEvaluateConjunction:
    def test_columns_are_variables(self, employment):
        result = evaluate_conjunction(parse_conjunction("E(n, c)"), employment)
        assert result.columns == ("n", "c")
        assert len(result) == 3

    def test_constant_selection(self, employment):
        result = evaluate_conjunction(
            parse_conjunction("E(n, 'IBM')"), employment
        )
        assert result.columns == ("n",)
        assert len(result) == 2

    def test_repeated_variable_in_atom(self):
        inst = Instance([fact("R", "a", "a"), fact("R", "a", "b")])
        result = evaluate_conjunction(parse_conjunction("R(x, x)"), inst)
        assert len(result) == 1

    def test_join_across_atoms(self, employment):
        result = evaluate_conjunction(
            parse_conjunction("E(n, c) & S(n, s)"), employment
        )
        assert set(result.columns) == {"n", "c", "s"}
        assert len(result) == 2

    def test_triangle_join(self, employment):
        result = evaluate_conjunction(
            parse_conjunction("E(n, c) & M(n, m) & E(m, c)"), employment
        )
        # Ada manages Bob and both are at IBM.
        assert len(result) == 1

    def test_missing_relation_gives_empty(self, employment):
        result = evaluate_conjunction(parse_conjunction("Zzz(x)"), employment)
        assert len(result) == 0

    def test_empty_conjunction_rejected(self, employment):
        with pytest.raises(FormulaError):
            evaluate_conjunction((), employment)


class TestDifferentialAgainstHomomorphisms:
    """The algebra plan and the homomorphism search must agree exactly."""

    CASES = (
        "E(n, c)",
        "E(n, 'IBM')",
        "E(n, c) & S(n, s)",
        "E(n, c) & E(n2, c)",
        "E(n, c) & M(n, m) & E(m, c)",
        "S(n, s) & M(n, m)",
    )

    @pytest.mark.parametrize("text", CASES)
    def test_same_assignments(self, employment, text):
        conjunction = parse_conjunction(text)
        variables = conjunction.variables()
        via_algebra = answers_via_algebra(variables, conjunction, employment)
        via_homs = frozenset(
            tuple(assignment[v] for v in variables)
            for assignment in find_homomorphisms(conjunction, employment)
        )
        assert via_algebra == via_homs

    def test_agreement_with_nulls_present(self):
        null = LabeledNull("N")
        inst = Instance([fact("R", "a", null), fact("S", null, "b")])
        conjunction = parse_conjunction("R(x, y) & S(y, z)")
        variables = conjunction.variables()
        via_algebra = answers_via_algebra(variables, conjunction, inst)
        via_homs = frozenset(
            tuple(assignment[v] for v in variables)
            for assignment in find_homomorphisms(conjunction, inst)
        )
        assert via_algebra == via_homs
        assert len(via_algebra) == 1  # joined through the null

    def test_agreement_on_chased_snapshot(self, setting):
        from repro.chase import chase_snapshot

        snapshot = Instance(
            [fact("E", "Ada", "IBM"), fact("S", "Ada", "18k"), fact("E", "Bob", "IBM")]
        )
        target = chase_snapshot(snapshot, setting).target
        conjunction = parse_conjunction("Emp(n, c, s)")
        variables = conjunction.variables()
        via_algebra = answers_via_algebra(variables, conjunction, target)
        via_homs = frozenset(
            tuple(assignment[v] for v in variables)
            for assignment in find_homomorphisms(conjunction, target)
        )
        assert via_algebra == via_homs
