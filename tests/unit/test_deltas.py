"""Unit tests for the canonical ``SourceDelta`` change-feed codec."""

import pytest

from repro.concrete import ConcreteInstance, concrete_fact
from repro.deltas import SourceDelta
from repro.errors import DeltaError
from repro.temporal import interval


def f(name, *values, start=0, end=None):
    span = interval(start) if end is None else interval(start, end)
    return concrete_fact(name, *values, interval=span)


def inst(*facts):
    instance = ConcreteInstance()
    for item in facts:
        instance.add(item)
    return instance


class TestConstruction:
    def test_canonical_order(self):
        a, b = f("R", "x"), f("S", "y")
        assert SourceDelta(add=(a, b)) == SourceDelta(add=(b, a))
        assert SourceDelta(add=(b, a)).add == tuple(
            sorted((a, b), key=type(a).sort_key)
        )

    def test_duplicate_on_one_side_rejected(self):
        fact = f("R", "x")
        with pytest.raises(DeltaError):
            SourceDelta(add=(fact, fact))

    def test_add_remove_overlap_rejected(self):
        fact = f("R", "x")
        with pytest.raises(DeltaError):
            SourceDelta(add=(fact,), remove=(fact,))

    def test_empty(self):
        delta = SourceDelta.empty()
        assert delta.is_empty and not delta and len(delta) == 0


class TestBetween:
    def test_diff(self):
        old = inst(f("R", "x"), f("S", "y"))
        new = inst(f("S", "y"), f("T", "z"))
        delta = SourceDelta.between(old, new)
        assert delta.add == (f("T", "z"),)
        assert delta.remove == (f("R", "x"),)

    def test_identity(self):
        instance = inst(f("R", "x"))
        assert SourceDelta.between(instance, instance).is_empty


class TestApply:
    def test_strict_apply(self):
        delta = SourceDelta(add=(f("T", "z"),), remove=(f("R", "x"),))
        result = delta.applied_to(inst(f("R", "x")))
        assert set(result.facts()) == {f("T", "z")}

    def test_remove_absent_rejected(self):
        delta = SourceDelta(add=(), remove=(f("R", "x"),))
        with pytest.raises(DeltaError):
            delta.applied_to(ConcreteInstance())

    def test_add_present_rejected(self):
        delta = SourceDelta(add=(f("R", "x"),), remove=())
        with pytest.raises(DeltaError):
            delta.applied_to(inst(f("R", "x")))

    def test_applied_to_leaves_input_alone(self):
        base = inst(f("R", "x"))
        SourceDelta(add=(f("S", "y"),), remove=()).applied_to(base)
        assert set(base.facts()) == {f("R", "x")}


class TestAlgebra:
    def test_inverse(self):
        delta = SourceDelta(add=(f("T", "z"),), remove=(f("R", "x"),))
        base = inst(f("R", "x"))
        assert set(delta.inverse().applied_to(delta.applied_to(base)).facts()) == set(
            base.facts()
        )

    def test_then_nets_out(self):
        fact = f("T", "z")
        there = SourceDelta(add=(fact,), remove=())
        back = SourceDelta(add=(), remove=(fact,))
        assert there.then(back).is_empty

    def test_then_composes(self):
        first = SourceDelta(add=(f("A", "1"),), remove=())
        second = SourceDelta(add=(f("B", "2"),), remove=())
        combined = first.then(second)
        assert combined.add == (f("A", "1"), f("B", "2"))


class TestCodec:
    def test_round_trip(self):
        delta = SourceDelta(
            add=(f("T", "z"), f("A", "1", start=3, end=9)),
            remove=(f("R", "x"),),
        )
        assert SourceDelta.from_json(delta.to_json()) == delta

    def test_bad_payload(self):
        with pytest.raises(DeltaError):
            SourceDelta.from_json({"add": "nope"})
        with pytest.raises(DeltaError):
            SourceDelta.from_json([])
        with pytest.raises(DeltaError):
            SourceDelta.from_json({"add": [], "remove": [], "extra": 1})
