"""The compositional query builder and its temporal-join combinators."""

import pytest

from repro.abstract_view import semantics
from repro.concrete import c_chase
from repro.errors import FormulaError
from repro.query import (
    ConjunctiveQuery,
    UnionQuery,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
    nonsequenced_join,
    select,
    sequenced_join,
    val,
)
from repro.relational.terms import Constant, Variable
from repro.workloads import (
    employment_setting,
    employment_source_concrete,
)


@pytest.fixture(scope="module")
def solution():
    return c_chase(
        employment_source_concrete(), employment_setting()
    ).unwrap()


class TestBuilder:
    def test_builds_the_parsed_query(self):
        built = select("n", "s").where("Emp", "n", "c", "s").build()
        assert built == ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")

    def test_strings_are_variables_values_need_val(self):
        query = select("n").where("Emp", "n", val("IBM"), "s").build()
        atom = query.body.atoms[0]
        assert atom.args[0] == Variable("n")
        assert atom.args[1] == Constant("IBM")

    def test_non_string_values_become_constants(self):
        query = select("x").where("R", "x", 7).build()
        assert query.body.atoms[0].args[1] == Constant(7)

    def test_project_reselects_the_head(self):
        query = (
            select("n", "s").where("Emp", "n", "c", "s").project("c").build()
        )
        assert query.head == (Variable("c"),)

    def test_named_sets_the_head_relation(self):
        assert select("n").where("R", "n").named("people").build().name == (
            "people"
        )

    def test_join_requires_a_shared_variable(self):
        with pytest.raises(FormulaError, match="shares no variable"):
            select("n").where("Emp", "n", "c", "s").join("Dept", "x", "y")

    def test_join_with_shared_variable_is_where(self):
        joined = (
            select("n").where("Emp", "n", "c", "s").join("Dept", "c", "m")
        )
        plain = select("n").where("Emp", "n", "c", "s").where("Dept", "c", "m")
        assert joined.build() == plain.build()

    def test_join_needs_a_body(self):
        with pytest.raises(FormulaError, match="existing body"):
            select("n").join("Emp", "n", "c", "s")

    def test_build_rejects_empty_body(self):
        with pytest.raises(FormulaError):
            select("n").build()

    def test_unsafe_head_rejected_at_build(self):
        with pytest.raises(FormulaError, match="unsafe"):
            select("missing").where("R", "x").build()

    def test_union_operator(self):
        union = select("n").where("Emp", "n", val("IBM"), "s") | select(
            "n"
        ).where("Emp", "n", val("Google"), "s")
        assert isinstance(union, UnionQuery)
        assert union == UnionQuery.of(
            "q(n) :- Emp(n, 'IBM', s)", "q(n) :- Emp(n, 'Google', s)"
        )

    def test_builders_are_immutable(self):
        base = select("n").where("Emp", "n", "c", "s")
        base.where("Dept", "c", "m")
        assert len(base.atoms) == 1

    def test_built_queries_evaluate(self, solution):
        built = select("n", "s").where("Emp", "n", "c", "s").build()
        parsed = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
        assert naive_evaluate_concrete(built, solution).rows == (
            naive_evaluate_concrete(parsed, solution).rows
        )


class TestSequencedJoin:
    def test_renames_non_exported_variables_apart(self):
        joined = sequenced_join(
            select("n", "c").where("Emp", "n", "c", "s"),
            select("m", "c").where("Emp", "m", "c", "s"),
        )
        atoms = joined.body.atoms
        # The right atom's salary variable may not capture the left's.
        assert atoms[0].args[2] != atoms[1].args[2]
        assert joined.head == (Variable("n"), Variable("c"), Variable("m"))

    def test_snapshot_semantics_is_support_intersection(self, solution):
        left = select("n", "c").where("Emp", "n", "c", "s").build()
        right = select("m", "c").where("Emp", "m", "c", "s").build()
        joined = sequenced_join(left, right)
        abstract = semantics(solution)
        answers = naive_evaluate_abstract(joined, abstract)
        left_answers = naive_evaluate_abstract(left, abstract)
        right_answers = naive_evaluate_abstract(right, abstract)
        for row, support in answers:
            n, c, m = row
            expected = left_answers.support((n, c)).intersect(
                right_answers.support((m, c))
            )
            assert support == expected

    def test_theorem_21_holds_for_joined_queries(self, solution):
        joined = sequenced_join(
            select("n", "c").where("Emp", "n", "c", "s"),
            select("m", "c").where("Emp", "m", "c", "s"),
        )
        assert naive_evaluate_concrete(joined, solution).to_temporal() == (
            naive_evaluate_abstract(joined, semantics(solution))
        )

    def test_accepts_builders_and_queries(self):
        builder = select("n").where("Emp", "n", "c", "s")
        query = builder.build()
        assert sequenced_join(builder, builder) == sequenced_join(query, query)


class TestNonsequencedJoin:
    def test_pairs_rows_regardless_of_time(self, solution):
        left = select("n", "c").where("Emp", "n", "c", "s").build()
        right = select("m", "c").where("Emp", "m", "c", "s").build()
        abstract = semantics(solution)
        left_answers = naive_evaluate_abstract(left, abstract)
        right_answers = naive_evaluate_abstract(right, abstract)
        rows = nonsequenced_join(left, right, left_answers, right_answers)
        # Every sequenced pair also pairs nonsequenced …
        sequenced = naive_evaluate_abstract(
            sequenced_join(left, right), abstract
        )
        assert {row for row, _ in sequenced} <= rows
        # … and the join key is the shared head column.
        for n, c, m in rows:
            assert (n, c) in left_answers
            assert (m, c) in right_answers

    def test_disjoint_supports_still_join(self):
        from repro.query.answers import TemporalAnswerSet
        from repro.temporal import Interval, IntervalSet

        left = select("x", "k").where("R", "x", "k").build()
        right = select("y", "k").where("S", "y", "k").build()
        a, b, j = Constant("a"), Constant("b"), Constant("j")
        la = TemporalAnswerSet({(a, j): IntervalSet.of(Interval(0, 5))})
        ra = TemporalAnswerSet({(b, j): IntervalSet.of(Interval(10, 20))})
        assert nonsequenced_join(left, right, la, ra) == {(a, j, b)}
