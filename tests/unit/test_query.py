"""Unit tests for conjunctive queries and unions."""

import pytest

from repro.errors import FormulaError, ParseError, SchemaError
from repro.query import ConjunctiveQuery, UnionQuery
from repro.relational import Schema, Variable


class TestConjunctiveQuery:
    def test_parse(self):
        q = ConjunctiveQuery.parse("q(n, c) :- Emp(n, c, s)")
        assert q.head == (Variable("n"), Variable("c"))
        assert q.arity == 2
        assert q.name == "q"
        assert q.existential_variables == (Variable("s"),)

    def test_boolean_query(self):
        q = ConjunctiveQuery.parse("yes() :- Emp(n, c, s)")
        assert q.arity == 0

    def test_constants_in_body(self):
        q = ConjunctiveQuery.parse("q(n) :- Emp(n, 'IBM', s)")
        assert len(q.body) == 1

    def test_join_body(self):
        q = ConjunctiveQuery.parse("q(n) :- Emp(n, c, s) & Emp(n, c2, s2)")
        assert len(q.body) == 2

    def test_unsafe_head_rejected(self):
        with pytest.raises(FormulaError, match="unsafe"):
            ConjunctiveQuery.parse("q(z) :- Emp(n, c, s)")

    def test_constant_in_head_rejected(self):
        with pytest.raises(ParseError):
            ConjunctiveQuery.parse("q('IBM') :- Emp(n, c, s)")

    def test_missing_turnstile_rejected(self):
        with pytest.raises(ParseError):
            ConjunctiveQuery.parse("q(n) Emp(n, c, s)")

    def test_multi_atom_head_rejected(self):
        with pytest.raises(ParseError):
            ConjunctiveQuery.parse("q(n) & p(n) :- Emp(n, c, s)")

    def test_lift_shares_temporal_variable(self):
        q = ConjunctiveQuery.parse("q(n) :- Emp(n, c, s) & Dept(c, d)")
        lifted = q.lift()
        assert lifted.is_shared
        assert len(lifted) == 2

    def test_validate_against_schema(self):
        q = ConjunctiveQuery.parse("q(n) :- Emp(n, c, s)")
        q.validate_against(Schema.of(Emp=("N", "C", "S")))
        with pytest.raises(SchemaError):
            q.validate_against(Schema.of(Emp=("N", "C")))

    def test_str(self):
        q = ConjunctiveQuery.parse("q(n) :- Emp(n, c, s)")
        assert str(q).startswith("q(n) :- ")


class TestUnionQuery:
    def test_of_mixed_inputs(self):
        q1 = ConjunctiveQuery.parse("q(x) :- A(x)")
        union = UnionQuery.of(q1, "q(x) :- B(x)")
        assert len(union) == 2
        assert union.arity == 1

    def test_parse_semicolon_separated(self):
        union = UnionQuery.parse("q(x) :- A(x); q(x) :- B(x)")
        assert len(union) == 2

    def test_parse_newline_separated(self):
        union = UnionQuery.parse("q(x) :- A(x)\nq(x) :- B(x)")
        assert len(union) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(FormulaError, match="arity"):
            UnionQuery.of("q(x) :- A(x)", "q(x, y) :- B(x, y)")

    def test_empty_union_rejected(self):
        with pytest.raises(FormulaError):
            UnionQuery(())

    def test_iteration(self):
        union = UnionQuery.of("q(x) :- A(x)", "q(x) :- B(x)")
        assert [d.body.relations() for d in union] == [("A",), ("B",)]
