"""Unit tests for the incremental cross-region chase (PR 3).

Covers the region-delta sweep's edge cases, the null factory's replay
surface, byte-identity of the incremental region chain against the
from-scratch reference, and shard-failure propagation through
:class:`AbstractChaseResult`.
"""

import importlib

import pytest

from repro.abstract_view import AbstractInstance, abstract_chase, semantics
from repro.abstract_view.abstract_instance import TemplateFact
from repro.chase import IncrementalRegionChaser, RegionReuseStats, chase_snapshot
from repro.chase.nulls import NullFactory
from repro.concrete import ConcreteInstance
from repro.concrete.concrete_fact import concrete_fact
from repro.dependencies import DataExchangeSetting
from repro.errors import ChaseFailureError, ShardExecutionError
from repro.relational import Schema
from repro.relational.terms import Constant
from repro.temporal.interval import Interval
from repro.temporal.timepoint import INFINITY
from repro.workloads import (
    exchange_setting_join,
    exchange_setting_org,
    random_employment_history,
    random_org_history,
)


def _template(relation, values, interval_):
    return TemplateFact(relation, tuple(Constant(v) for v in values), interval_)


class TestRegionDeltaSweep:
    def test_empty_abstract_instance(self):
        deltas = list(AbstractInstance.empty().iter_region_deltas())
        assert len(deltas) == 1
        region, snapshot, added, removed = deltas[0]
        assert region == Interval(0, INFINITY)
        assert len(snapshot) == 0 and added == () and removed == ()

    def test_single_template(self):
        source = AbstractInstance([_template("R", ("a",), Interval(2, 5))])
        deltas = [
            (region, tuple(map(str, added)), tuple(map(str, removed)))
            for region, _snap, added, removed in source.iter_region_deltas()
        ]
        assert deltas == [
            (Interval(0, 2), (), ()),
            (Interval(2, 5), ("R(a)",), ()),
            (Interval(5, INFINITY), (), ("R(a)",)),
        ]

    def test_breakpoint_at_the_horizon(self):
        # One template ends exactly where the open-ended one begins; the
        # final region swaps one fact for the other.
        source = AbstractInstance(
            [
                _template("R", ("a",), Interval(0, 4)),
                _template("R", ("b",), Interval(4, INFINITY)),
            ]
        )
        deltas = list(source.iter_region_deltas())
        region, _snap, added, removed = deltas[-1]
        assert region == Interval(4, INFINITY)
        assert [str(f) for f in added] == ["R(b)"]
        assert [str(f) for f in removed] == ["R(a)"]

    def test_identical_adjacent_snapshots_cancel(self):
        # R(a) leaves one template and enters another at t=3: the region
        # boundary exists, but the snapshots agree, so the diff is empty.
        source = AbstractInstance(
            [
                _template("R", ("a",), Interval(0, 3)),
                _template("R", ("a",), Interval(3, 7)),
                _template("S", ("x",), Interval(0, 7)),
            ]
        )
        # The sweep instance is live (mutated between yields), so assert
        # during iteration.
        seen = []
        for region, snapshot, added, removed in source.iter_region_deltas():
            seen.append(region)
            if region == Interval(3, 7):
                assert added == () and removed == ()
                assert len(snapshot) == 2
        assert Interval(3, 7) in seen

    def test_diffs_match_snapshot_set_difference(self):
        workload = random_employment_history(people=4, timeline=30, seed=5)
        source = semantics(workload.instance)
        previous = frozenset()
        for _region, snapshot, added, removed in source.iter_region_deltas():
            current = snapshot.facts()
            assert frozenset(added) == current - previous
            assert frozenset(removed) == previous - current
            previous = current


class TestIdenticalSnapshotsReplay:
    SETTING = DataExchangeSetting.create(
        Schema.of(R=("X",), S=("Y",)),
        Schema.of(T=("X", "K")),
        st_tgds=["R(x) -> EXISTS k . T(x, k)"],
    )

    def test_zero_live_rules_on_identical_snapshots(self):
        source = AbstractInstance(
            [
                _template("R", ("a",), Interval(0, 3)),
                _template("R", ("a",), Interval(3, 7)),
                _template("S", ("x",), Interval(0, 7)),
            ]
        )
        result = abstract_chase(source, self.SETTING, incremental=True)
        assert result.succeeded
        # Region [3, 7) has an identical snapshot to [0, 3): the
        # incremental path must not find or fire a single live rule.
        stats = result.region_reuse[Interval(3, 7)]
        assert stats.fully_replayed
        assert stats.live_matches == 0 and stats.live_firings == 0
        assert stats.replayed_firings == 1
        # ... and the null numbering still advances exactly as from
        # scratch: each region mints its own null.
        full = abstract_chase(source, self.SETTING, incremental=False)
        assert sorted(map(str, result.target.templates)) == sorted(
            map(str, full.target.templates)
        )


class TestNullFactoryReplay:
    def test_state_restore_roundtrip(self):
        factory = NullFactory()
        factory.fresh()
        mark = factory.state()
        first = [factory.fresh() for _ in range(3)]
        factory.restore(mark)
        second = [factory.fresh() for _ in range(3)]
        assert [n.name for n in first] == [n.name for n in second]

    def test_restore_validates_bounds(self):
        factory = NullFactory()
        factory.fresh()
        with pytest.raises(ValueError):
            factory.restore(5)
        with pytest.raises(ValueError):
            factory.restore(-1)

    def test_reissue_preserves_order_and_count(self):
        recording = NullFactory()
        transcript = [recording.fresh() for _ in range(4)]
        replaying = NullFactory()
        replaying.fresh()  # shift the counter
        rename = replaying.reissue(transcript)
        assert list(rename) == transcript
        assert [n.name for n in rename.values()] == ["N2", "N3", "N4", "N5"]


class TestIncrementalChainByteIdentity:
    @pytest.mark.parametrize(
        "setting_factory,workload_factory",
        [
            (
                exchange_setting_join,
                lambda: random_employment_history(people=6, timeline=40, seed=7),
            ),
            (
                exchange_setting_org,
                lambda: random_org_history(people=12, timeline=64, seed=7),
            ),
        ],
    )
    def test_chain_matches_chase_snapshot_sequence(
        self, setting_factory, workload_factory
    ):
        setting = setting_factory()
        source = semantics(workload_factory().instance)
        chaser = IncrementalRegionChaser(setting, NullFactory())
        reference_nulls = NullFactory()
        for region, snapshot, added, removed in source.iter_region_deltas():
            incremental, _stats = chaser.chase(snapshot, added, removed)
            reference = chase_snapshot(
                snapshot, setting, null_factory=reference_nulls
            )
            assert incremental.failed == reference.failed, region
            assert sorted(map(str, incremental.target.facts())) == sorted(
                map(str, reference.target.facts())
            ), region
            assert [repr(s) for s in incremental.trace.steps] == [
                repr(s) for s in reference.trace.steps
            ], region

    def test_failure_matches_from_scratch(self):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = semantics(
            ConcreteInstance(
                [
                    concrete_fact("P", "a", "1", interval=Interval(0, 6)),
                    concrete_fact("P", "a", "2", interval=Interval(4, 9)),
                ]
            )
        )
        incremental = abstract_chase(source, setting, incremental=True)
        full = abstract_chase(source, setting, incremental=False)
        assert incremental.failed and full.failed
        assert incremental.failed_region == full.failed_region == Interval(4, 6)
        assert str(incremental.failure) == str(full.failure)
        failed = incremental.region_results[Interval(4, 6)]
        reference = full.region_results[Interval(4, 6)]
        assert [repr(s) for s in failed.trace.steps] == [
            repr(s) for s in reference.trace.steps
        ]


class TestShardFailurePropagation:
    @pytest.fixture
    def setting(self):
        return exchange_setting_join()

    @pytest.fixture
    def source(self):
        workload = random_employment_history(people=4, timeline=40, seed=3)
        return semantics(workload.instance)

    def test_exception_carries_shard_and_region(
        self, setting, source, monkeypatch
    ):
        regions = source.regions()
        target_region = regions[len(regions) * 3 // 4]
        module = importlib.import_module("repro.abstract_view.abstract_chase")

        original = module.chase_snapshot

        def exploding(snapshot, setting_, **kwargs):
            if exploding.region == target_region:
                raise RuntimeError("disk on fire")
            return original(snapshot, setting_, **kwargs)

        exploding.region = None

        def tracking(self, regions_=None):
            for region, snapshot in original_iter(self, regions_):
                exploding.region = region
                yield region, snapshot

        original_iter = module.AbstractInstance.iter_region_snapshots
        monkeypatch.setattr(module, "chase_snapshot", exploding)
        monkeypatch.setattr(
            module.AbstractInstance, "iter_region_snapshots", tracking
        )

        result = abstract_chase(source, setting, shards=2, incremental=False)
        assert result.failed
        assert result.error is not None
        assert result.failed_shard == 1
        assert result.failed_region == target_region
        # Every shard still reports, including the failing one.
        assert len(result.shard_reports) == 2
        with pytest.raises(ShardExecutionError) as exc_info:
            result.unwrap()
        message = str(exc_info.value)
        assert "shard 1" in message
        assert str(target_region) in message
        assert "disk on fire" in message
        assert isinstance(exc_info.value.__cause__, RuntimeError)

    def test_incremental_exception_carries_shard_and_region(
        self, setting, source, monkeypatch
    ):
        regions = source.regions()
        target_region = regions[1]
        module = importlib.import_module("repro.abstract_view.abstract_chase")

        original = module.IncrementalRegionChaser.chase

        def exploding(self, snapshot, added, removed):
            if exploding.count == 1:
                raise RuntimeError("replay log corrupted")
            exploding.count += 1
            return original(self, snapshot, added, removed)

        exploding.count = 0
        monkeypatch.setattr(
            module.IncrementalRegionChaser, "chase", exploding
        )
        result = abstract_chase(source, setting, incremental=True)
        assert result.failed and result.failed_shard == 0
        assert result.failed_region == target_region
        with pytest.raises(ShardExecutionError, match="replay log corrupted"):
            result.unwrap()

    def test_chase_failure_message_names_shard(self, monkeypatch):
        setting = DataExchangeSetting.create(
            Schema.of(P=("X", "Y")),
            Schema.of(T=("X", "Y")),
            st_tgds=["P(x, y) -> T(x, y)"],
            egds=["T(x, y) & T(x, y2) -> y = y2"],
        )
        source = semantics(
            ConcreteInstance(
                [
                    concrete_fact("P", "a", "1", interval=Interval(0, 6)),
                    concrete_fact("P", "a", "2", interval=Interval(4, 9)),
                ]
            )
        )
        result = abstract_chase(source, setting, shards=2)
        assert result.failed and result.failed_shard is not None
        with pytest.raises(ChaseFailureError) as exc_info:
            result.unwrap()
        assert f"shard {result.failed_shard}" in str(exc_info.value)


class TestRegionReuseStats:
    def test_accumulate(self):
        total = RegionReuseStats()
        total.add(RegionReuseStats(replayed_matches=2, live_firings=1))
        total.add(RegionReuseStats(live_matches=3, streams_reused=4))
        assert total.replayed_matches == 2
        assert total.live_matches == 3
        assert total.live_firings == 1
        assert total.streams_reused == 4
        assert not total.fully_replayed
        assert RegionReuseStats(replayed_matches=5).fully_replayed


class TestShardErrorSurfaces:
    """Review follow-ups: shard exceptions must not masquerade as verdicts."""

    def test_verify_correspondence_raises_shard_error(self, monkeypatch):
        from repro.correspondence import verify_correspondence
        from repro.workloads import employment_setting, employment_source_concrete

        module = importlib.import_module("repro.abstract_view.abstract_chase")

        def exploding(self, snapshot, added, removed):
            raise RuntimeError("replay log corrupted")

        monkeypatch.setattr(
            module.IncrementalRegionChaser, "chase", exploding
        )
        with pytest.raises(ShardExecutionError, match="replay log corrupted"):
            verify_correspondence(
                employment_source_concrete(), employment_setting()
            )

    def test_sweep_exception_not_blamed_on_previous_region(
        self, monkeypatch
    ):
        source = semantics(
            random_employment_history(people=2, timeline=20, seed=1).instance
        )
        module = importlib.import_module("repro.abstract_view.abstract_chase")
        original = module.AbstractInstance.iter_region_deltas

        def breaking(self, regions=None):
            iterator = original(self, regions)
            yield next(iterator)
            raise OSError("sweep storage gone")

        monkeypatch.setattr(
            module.AbstractInstance, "iter_region_deltas", breaking
        )
        result = abstract_chase(source, exchange_setting_join())
        assert result.failed and result.error is not None
        # The advance raised, not the completed region's chase.
        assert result.error.region is None
        assert "while advancing the region sweep" in str(result.error)
        assert len(result.region_results) == 1
