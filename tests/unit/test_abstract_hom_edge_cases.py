"""Edge cases for abstract homomorphism search: spans, regions, mixing."""

from repro.abstract_view import (
    AbstractInstance,
    TemplateFact,
    find_abstract_homomorphism,
    has_abstract_homomorphism,
    homomorphically_equivalent,
)
from repro.relational import Constant, LabeledNull
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, interval


def tf(rel, args, stamp):
    return TemplateFact(rel, tuple(args), stamp)


class TestRigidSpanRules:
    def test_long_region_rigid_cannot_track_family(self):
        # One region of length 5: the rigid null would need to follow
        # M@0..M@4, impossible under condition 2.
        rigid = AbstractInstance([tf("R", (LabeledNull("N"),), Interval(0, 5))])
        family = AbstractInstance(
            [tf("R", (AnnotatedNull("M", Interval(0, 5)),), Interval(0, 5))]
        )
        assert not has_abstract_homomorphism(rigid, family)
        assert has_abstract_homomorphism(family, rigid)

    def test_span_union_of_two_single_point_templates(self):
        # N occurs at times 1 and 3 (two length-1 templates): its span is
        # 2 points, so it still may not map to per-snapshot nulls.
        rigid = AbstractInstance(
            [
                tf("R", (LabeledNull("N"),), Interval(1, 2)),
                tf("R", (LabeledNull("N"),), Interval(3, 4)),
            ]
        )
        family = AbstractInstance(
            [
                tf("R", (AnnotatedNull("M", Interval(1, 2)),), Interval(1, 2)),
                tf("R", (AnnotatedNull("M", Interval(3, 4)),), Interval(3, 4)),
            ]
        )
        assert not has_abstract_homomorphism(rigid, family)

    def test_single_point_rigid_tracks_family(self):
        rigid = AbstractInstance([tf("R", (LabeledNull("N"),), Interval(3, 4))])
        family = AbstractInstance(
            [tf("R", (AnnotatedNull("M", Interval(3, 4)),), Interval(3, 4))]
        )
        assert homomorphically_equivalent(rigid, family)

    def test_unbounded_rigid_span(self):
        rigid = AbstractInstance([tf("R", (LabeledNull("N"),), interval(2))])
        family = AbstractInstance(
            [tf("R", (AnnotatedNull("M", interval(2)),), interval(2))]
        )
        constant = AbstractInstance([tf("R", (Constant("v"),), interval(2))])
        assert not has_abstract_homomorphism(rigid, family)
        assert has_abstract_homomorphism(rigid, constant)
        assert has_abstract_homomorphism(family, constant)


class TestMixedNullKinds:
    def test_fact_with_both_kinds(self):
        source = AbstractInstance(
            [
                tf(
                    "R",
                    (LabeledNull("N"), AnnotatedNull("M", Interval(0, 3))),
                    Interval(0, 3),
                )
            ]
        )
        target = AbstractInstance(
            [
                tf(
                    "R",
                    (Constant("a"), AnnotatedNull("K", Interval(0, 3))),
                    Interval(0, 3),
                )
            ]
        )
        hom = find_abstract_homomorphism(source, target)
        assert hom is not None
        assert hom.rigid_mapping[LabeledNull("N")] == Constant("a")

    def test_family_may_collapse_to_rigid(self):
        # Each M@ℓ maps to the same rigid null N — allowed, since every
        # M@ℓ is a distinct null with no cross-snapshot constraint.
        family = AbstractInstance(
            [tf("R", (AnnotatedNull("M", Interval(0, 4)),), Interval(0, 4))]
        )
        rigid = AbstractInstance([tf("R", (LabeledNull("N"),), Interval(0, 4))])
        assert has_abstract_homomorphism(family, rigid)

    def test_repeated_null_within_fact(self):
        source = AbstractInstance(
            [tf("R", (LabeledNull("N"), LabeledNull("N")), Interval(0, 2))]
        )
        diagonal = AbstractInstance(
            [tf("R", (Constant("a"), Constant("a")), Interval(0, 2))]
        )
        off_diagonal = AbstractInstance(
            [tf("R", (Constant("a"), Constant("b")), Interval(0, 2))]
        )
        assert has_abstract_homomorphism(source, diagonal)
        assert not has_abstract_homomorphism(source, off_diagonal)


class TestRegionStructure:
    def test_gap_regions_are_trivial(self):
        # Source active on [0,2) and [10,12); the gap imposes nothing.
        source = AbstractInstance(
            [
                tf("R", (Constant("a"),), Interval(0, 2)),
                tf("R", (Constant("a"),), Interval(10, 12)),
            ]
        )
        target = AbstractInstance(
            [tf("R", (Constant("a"),), interval(0))]
        )
        assert has_abstract_homomorphism(source, target)

    def test_target_misaligned_by_one_snapshot(self):
        source = AbstractInstance([tf("R", (Constant("a"),), Interval(5, 8))])
        target = AbstractInstance([tf("R", (Constant("a"),), Interval(6, 9))])
        assert not has_abstract_homomorphism(source, target)

    def test_three_region_backtracking(self):
        # Region 1 offers two choices for N; only the second survives
        # regions 2 and 3.
        source = AbstractInstance(
            [
                tf("A", (LabeledNull("N"),), Interval(0, 1)),
                tf("B", (LabeledNull("N"),), Interval(2, 3)),
                tf("C", (LabeledNull("N"),), Interval(4, 5)),
            ]
        )
        target = AbstractInstance(
            [
                tf("A", (Constant("x"),), Interval(0, 1)),
                tf("A", (Constant("y"),), Interval(0, 1)),
                tf("B", (Constant("x"),), Interval(2, 3)),
                tf("B", (Constant("y"),), Interval(2, 3)),
                tf("C", (Constant("y"),), Interval(4, 5)),
            ]
        )
        hom = find_abstract_homomorphism(source, target)
        assert hom is not None
        assert hom.rigid_mapping[LabeledNull("N")] == Constant("y")

    def test_two_nulls_cross_constraints(self):
        source = AbstractInstance(
            [
                tf("P", (LabeledNull("N"), LabeledNull("M")), Interval(0, 2)),
                tf("Q", (LabeledNull("M"),), Interval(5, 7)),
            ]
        )
        target = AbstractInstance(
            [
                tf("P", (Constant("a"), Constant("b")), Interval(0, 2)),
                tf("P", (Constant("c"), Constant("d")), Interval(0, 2)),
                tf("Q", (Constant("b"),), Interval(5, 7)),
            ]
        )
        hom = find_abstract_homomorphism(source, target)
        assert hom is not None
        assert hom.rigid_mapping[LabeledNull("N")] == Constant("a")
        assert hom.rigid_mapping[LabeledNull("M")] == Constant("b")

    def test_equivalence_of_differently_fragmented_families(self):
        # One family over [0,4) vs two families over [0,2), [2,4): the
        # per-snapshot semantics coincide.
        whole = AbstractInstance(
            [tf("R", (AnnotatedNull("M", Interval(0, 4)),), Interval(0, 4))]
        )
        split = AbstractInstance(
            [
                tf("R", (AnnotatedNull("A", Interval(0, 2)),), Interval(0, 2)),
                tf("R", (AnnotatedNull("B", Interval(2, 4)),), Interval(2, 4)),
            ]
        )
        assert homomorphically_equivalent(whole, split)

    def test_rigid_split_is_weaker_than_whole(self):
        # Rigid N over [0,4) vs rigid A over [0,2) + rigid B over [2,4):
        # the whole maps nowhere (A ≠ B would be required), the split
        # maps into the whole.
        whole = AbstractInstance(
            [tf("R", (LabeledNull("N"),), Interval(0, 4))]
        )
        split = AbstractInstance(
            [
                tf("R", (LabeledNull("A"),), Interval(0, 2)),
                tf("R", (LabeledNull("B"),), Interval(2, 4)),
            ]
        )
        assert has_abstract_homomorphism(split, whole)
        assert not has_abstract_homomorphism(whole, split)
