"""Unit tests for the shared replay-state persistence (repro.state)."""

import json

import pytest

from repro.cli import main
from repro.concrete import CChaseReplayState, c_chase
from repro.query import QueryLog
from repro.serialize import concrete_instance_to_json, setting_to_json
from repro.state import (
    StateError,
    load_chase_state,
    load_query_log,
    save_chase_state,
    save_query_log,
)
from repro.workloads import employment_setting, employment_source_concrete


class TestChaseStateRoundTrip:
    def test_absent_file_means_record_fresh(self, tmp_path):
        assert load_chase_state(str(tmp_path / "missing.pkl")) is True

    def test_round_trip(self, tmp_path):
        result = c_chase(
            employment_source_concrete(), employment_setting(), incremental=True
        )
        path = tmp_path / "state.pkl"
        save_chase_state(str(path), result.replay_state)
        loaded = load_chase_state(str(path))
        assert isinstance(loaded, CChaseReplayState)
        replayed = c_chase(
            employment_source_concrete(), employment_setting(), incremental=loaded
        )
        assert list(replayed.target) == list(result.target)

    def test_save_none_is_a_no_op(self, tmp_path):
        path = tmp_path / "state.pkl"
        save_chase_state(str(path), None)
        assert not path.exists()

    def test_wrong_payload_type_is_a_state_error(self, tmp_path):
        path = tmp_path / "state.pkl"
        import pickle

        path.write_bytes(pickle.dumps({"not": "a state"}))
        with pytest.raises(StateError, match="normalization log"):
            load_chase_state(str(path))

    def test_garbage_bytes_are_a_state_error(self, tmp_path):
        path = tmp_path / "state.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(StateError):
            load_chase_state(str(path))


class TestQueryLogRoundTrip:
    def test_absent_file_means_fresh_log(self, tmp_path):
        log = load_query_log(str(tmp_path / "missing.pkl"))
        assert isinstance(log, QueryLog)

    def test_round_trip(self, tmp_path):
        log = QueryLog()
        path = tmp_path / "log.pkl"
        save_query_log(str(path), log)
        assert isinstance(load_query_log(str(path)), QueryLog)


class TestCliServerLedgerParity:
    """The CLI and the server persist ledgers through the same helper.

    Regression for the shared-state extraction: a chase driven through
    the CLI's ``--norm-log`` flag and one driven through
    :mod:`repro.state` directly must produce identical ledger files.
    """

    def test_identical_ledger_files(self, tmp_path):
        mapping = tmp_path / "mapping.json"
        source = tmp_path / "source.json"
        mapping.write_text(json.dumps(setting_to_json(employment_setting())))
        source.write_text(
            json.dumps(concrete_instance_to_json(employment_source_concrete()))
        )
        cli_log = tmp_path / "cli.pkl"
        code = main(
            [
                "chase",
                "--mapping",
                str(mapping),
                "--source",
                str(source),
                "--out",
                str(tmp_path / "out.json"),
                "--norm-log",
                str(cli_log),
            ]
        )
        assert code == 0

        # Same inputs the CLI saw (through the JSON codec), chased
        # directly and persisted through repro.state.
        from repro.serialize import concrete_instance_from_json, setting_from_json

        direct_log = tmp_path / "direct.pkl"
        result = c_chase(
            concrete_instance_from_json(json.loads(source.read_text())),
            setting_from_json(json.loads(mapping.read_text())),
            incremental=True,
        )
        save_chase_state(str(direct_log), result.replay_state)

        assert cli_log.read_bytes() == direct_log.read_bytes()
