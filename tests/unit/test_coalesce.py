"""Unit tests for generic coalescing (Böhlen et al.)."""

from repro.temporal import Interval, interval
from repro.temporal.coalesce import (
    coalesce_intervals,
    coalesce_pairs,
    group_is_coalesced,
    is_coalesced_intervals,
)


class TestCoalesceIntervals:
    def test_merges_adjacent(self):
        assert coalesce_intervals([Interval(1, 3), Interval(3, 6)]) == (
            Interval(1, 6),
        )

    def test_merges_overlapping(self):
        assert coalesce_intervals([Interval(1, 4), Interval(2, 6)]) == (
            Interval(1, 6),
        )

    def test_keeps_separated(self):
        assert coalesce_intervals([Interval(1, 3), Interval(5, 6)]) == (
            Interval(1, 3),
            Interval(5, 6),
        )

    def test_idempotent(self):
        once = coalesce_intervals([Interval(1, 3), Interval(2, 8), interval(12)])
        assert coalesce_intervals(once) == once

    def test_unbounded(self):
        assert coalesce_intervals([Interval(1, 5), interval(5)]) == (interval(1),)

    def test_empty(self):
        assert coalesce_intervals([]) == ()


class TestCoalescePairs:
    def test_groups_by_key(self):
        result = coalesce_pairs(
            [
                ("ada", Interval(2012, 2014)),
                ("ada", Interval(2014, 2016)),
                ("bob", Interval(2013, 2015)),
            ]
        )
        assert result == {
            "ada": (Interval(2012, 2016),),
            "bob": (Interval(2013, 2015),),
        }

    def test_different_keys_do_not_merge(self):
        result = coalesce_pairs(
            [("a", Interval(1, 3)), ("b", Interval(3, 5))]
        )
        assert result == {"a": (Interval(1, 3),), "b": (Interval(3, 5),)}


class TestIsCoalesced:
    def test_detects_adjacency(self):
        assert not is_coalesced_intervals([Interval(1, 3), Interval(3, 5)])

    def test_detects_overlap(self):
        assert not is_coalesced_intervals([Interval(1, 4), Interval(3, 5)])

    def test_accepts_separated(self):
        assert is_coalesced_intervals([Interval(1, 3), Interval(4, 5)])

    def test_accepts_single_and_empty(self):
        assert is_coalesced_intervals([Interval(1, 3)])
        assert is_coalesced_intervals([])

    def test_order_insensitive(self):
        assert not is_coalesced_intervals([Interval(3, 5), Interval(1, 3)])

    def test_group_check(self):
        assert group_is_coalesced(
            {"a": [Interval(1, 3)], "b": [Interval(1, 3), Interval(5, 9)]}
        )
        assert not group_is_coalesced(
            {"a": [Interval(1, 3), Interval(3, 9)]}
        )
