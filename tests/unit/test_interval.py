"""Unit tests for half-open intervals [s, e)."""

import pytest

from repro.errors import TemporalError
from repro.temporal import INFINITY, Interval, interval, span_of


class TestConstruction:
    def test_finite(self):
        item = Interval(2, 5)
        assert item.start == 2 and item.end == 5
        assert item.is_finite and not item.is_unbounded

    def test_unbounded(self):
        item = interval(3)
        assert item.end is INFINITY
        assert item.is_unbounded

    def test_interval_helper_with_string_end(self):
        assert interval(3, "inf") == interval(3)
        assert interval(3, 9) == Interval(3, 9)

    def test_empty_rejected(self):
        with pytest.raises(TemporalError):
            Interval(5, 5)

    def test_inverted_rejected(self):
        with pytest.raises(TemporalError):
            Interval(5, 3)

    def test_negative_start_rejected(self):
        with pytest.raises(TemporalError):
            Interval(-1, 3)

    def test_infinite_start_rejected(self):
        with pytest.raises(TemporalError):
            Interval(INFINITY, INFINITY)  # type: ignore[arg-type]

    def test_hashable_value_semantics(self):
        assert Interval(2, 5) == Interval(2, 5)
        assert len({Interval(2, 5), Interval(2, 5), interval(2)}) == 2


class TestMembershipAndDuration:
    def test_contains_half_open(self):
        item = Interval(2, 5)
        assert 2 in item and 4 in item
        assert 5 not in item and 1 not in item

    def test_unbounded_contains_everything_from_start(self):
        item = interval(10)
        assert 10 in item and 10**9 in item
        assert 9 not in item

    def test_infinity_not_a_member(self):
        assert INFINITY not in interval(0)

    def test_non_int_not_a_member(self):
        assert "2013" not in Interval(2012, 2015)
        assert True not in Interval(0, 5)  # bools excluded on purpose

    def test_duration(self):
        assert Interval(2, 5).duration() == 3
        assert interval(2).duration() is INFINITY

    def test_contains_interval(self):
        assert Interval(2, 8).contains_interval(Interval(3, 5))
        assert Interval(2, 8).contains_interval(Interval(2, 8))
        assert not Interval(2, 8).contains_interval(Interval(3, 9))
        assert interval(2).contains_interval(interval(5))
        assert not Interval(2, 9).contains_interval(interval(5))


class TestRelationships:
    def test_overlap(self):
        assert Interval(1, 5).overlaps(Interval(4, 9))
        assert not Interval(1, 4).overlaps(Interval(4, 9))  # adjacency only

    def test_overlap_unbounded(self):
        assert interval(3).overlaps(Interval(100, 101))
        assert interval(3).overlaps(interval(1000))

    def test_intersect(self):
        assert Interval(1, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(1, 3).intersect(Interval(3, 9)) is None
        assert interval(4).intersect(interval(9)) == interval(9)

    def test_adjacent_paper_definition(self):
        # Two intervals are adjacent iff s' = e or s = e'.
        assert Interval(1, 4).adjacent(Interval(4, 9))
        assert Interval(4, 9).adjacent(Interval(1, 4))
        assert not Interval(1, 4).adjacent(Interval(5, 9))
        assert not Interval(1, 5).adjacent(Interval(4, 9))  # overlap, not adjacency

    def test_union_of_overlapping(self):
        assert Interval(1, 5).union(Interval(4, 9)) == Interval(1, 9)

    def test_union_of_adjacent(self):
        assert Interval(1, 4).union(Interval(4, 9)) == Interval(1, 9)
        assert Interval(4, 9).union(interval(9)) == interval(4)

    def test_union_of_disjoint_raises(self):
        with pytest.raises(TemporalError):
            Interval(1, 3).union(Interval(5, 9))

    def test_difference(self):
        assert Interval(1, 9).difference(Interval(3, 5)) == (
            Interval(1, 3),
            Interval(5, 9),
        )
        assert Interval(1, 9).difference(Interval(0, 5)) == (Interval(5, 9),)
        assert Interval(1, 9).difference(Interval(0, 10)) == ()
        assert Interval(1, 4).difference(Interval(6, 9)) == (Interval(1, 4),)

    def test_difference_unbounded(self):
        assert interval(0).difference(Interval(3, 7)) == (
            Interval(0, 3),
            interval(7),
        )

    def test_precedes(self):
        assert Interval(1, 4).precedes(Interval(4, 9))
        assert not Interval(1, 5).precedes(Interval(4, 9))


class TestSplitting:
    def test_split_interior_points(self):
        # The Example 14 fragmentation of f1 = [5, 11) at {7, 8, 10}.
        pieces = Interval(5, 11).split_at([7, 8, 10])
        assert pieces == (
            Interval(5, 7),
            Interval(7, 8),
            Interval(8, 10),
            Interval(10, 11),
        )

    def test_split_ignores_exterior_and_boundary_points(self):
        assert Interval(5, 11).split_at([5, 11, 2, 99]) == (Interval(5, 11),)

    def test_split_unbounded(self):
        assert interval(18).split_at([20, 25]) == (
            Interval(18, 20),
            Interval(20, 25),
            interval(25),
        )

    def test_split_deduplicates(self):
        assert Interval(0, 4).split_at([2, 2, 2]) == (Interval(0, 2), Interval(2, 4))

    def test_split_concatenation_invariant(self):
        pieces = Interval(3, 20).split_at([5, 11, 17])
        assert pieces[0].start == 3
        assert pieces[-1].end == 20
        for left, right in zip(pieces, pieces[1:], strict=False):
            assert left.end == right.start


class TestIterationAndRendering:
    def test_points(self):
        assert list(Interval(2, 6).points()) == [2, 3, 4, 5]

    def test_points_with_limit(self):
        assert list(interval(3).points(limit=6)) == [3, 4, 5]
        assert list(Interval(2, 10).points(limit=4)) == [2, 3]

    def test_points_unbounded_without_limit_raises(self):
        with pytest.raises(TemporalError):
            interval(0).points()

    def test_str(self):
        assert str(Interval(2012, 2014)) == "[2012, 2014)"
        assert str(interval(2014)) == "[2014, inf)"

    def test_parse_roundtrip(self):
        for item in (Interval(2, 5), interval(7)):
            assert Interval.parse(str(item)) == item

    def test_parse_variants(self):
        assert Interval.parse("3,9") == Interval(3, 9)
        assert Interval.parse("[3, ∞)") == interval(3)

    def test_parse_errors(self):
        with pytest.raises(TemporalError):
            Interval.parse("[1)")
        with pytest.raises(TemporalError):
            Interval.parse("[inf, 3)")

    def test_sort_key_orders_bounded_before_unbounded(self):
        items = [interval(2), Interval(2, 9), Interval(1, 3)]
        ordered = sorted(items, key=Interval.sort_key)
        assert ordered == [Interval(1, 3), Interval(2, 9), interval(2)]


class TestSpanOf:
    def test_span(self):
        assert span_of([Interval(3, 5), Interval(1, 2)]) == Interval(1, 5)
        assert span_of([Interval(3, 5), interval(9)]) == interval(3)

    def test_span_empty(self):
        assert span_of([]) is None


class TestSplitAtSorted:
    def test_matches_split_at(self):
        stamp = Interval(5, 11)
        assert stamp.split_at_sorted([7, 8, 10]) == stamp.split_at({10, 7, 8})

    def test_empty_cuts(self):
        stamp = Interval(5, 11)
        assert stamp.split_at_sorted([]) == (stamp,)

    def test_unbounded_tail(self):
        assert interval(3).split_at_sorted([5]) == (Interval(3, 5), interval(5))


class TestTrustedMakeAndSortKeyCache:
    def test_make_equals_checked_constructor(self):
        made = Interval.make(2, 9)
        assert made == Interval(2, 9)
        assert hash(made) == hash(Interval(2, 9))

    def test_sort_key_cached_and_stable(self):
        stamp = Interval(4, INFINITY)
        first = stamp.sort_key()
        assert first == (4, 1, INFINITY)
        assert stamp.sort_key() is first  # cached tuple object

    def test_bounded_sorts_before_unbounded(self):
        assert Interval(4, 9).sort_key() < Interval(4, INFINITY).sort_key()
