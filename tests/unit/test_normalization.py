"""Unit tests for normalization: Definition 10, Theorem 11, Algorithm 1."""

import pytest

from repro.concrete import (
    ConcreteInstance,
    concrete_fact,
    find_temporal_homomorphisms,
    find_violation,
    has_empty_intersection_property,
    interval_of,
    is_normalized,
    naive_normalize,
    normalize,
    normalize_with_report,
)
from repro.errors import FormulaError
from repro.relational import Constant, TemporalConjunction, Variable, parse_conjunction
from repro.temporal import Interval
from repro.workloads import (
    algorithm1_example_conjunctions,
    algorithm1_example_instance,
    salary_conjunction,
)


def tc(text: str) -> TemporalConjunction:
    return TemporalConjunction.from_conjunction(parse_conjunction(text))


class TestTemporalHomomorphisms:
    def test_shared_variable_requires_equal_stamps(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(1, 5)),
                concrete_fact("S", "b", interval=Interval(2, 5)),
            ]
        )
        matches = list(find_temporal_homomorphisms(tc("R(x) & S(y)"), inst))
        # Only the S-fact with the SAME stamp joins under shared t.
        assert len(matches) == 1
        assignment, images = matches[0]
        assert assignment[Variable("y")] == Constant("a")

    def test_decoupled_variables_allow_different_stamps(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "b", interval=Interval(7, 9)),
            ]
        )
        decoupled = tc("R(x) & S(y)").normalized()
        matches = list(find_temporal_homomorphisms(decoupled, inst))
        assert len(matches) == 1

    def test_no_match_on_unsatisfied_join(self):
        inst = ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(1, 5))]
        )
        assert list(find_temporal_homomorphisms(tc("R(x) & S(x)"), inst)) == []

    def test_interval_of_unwraps(self):
        inst = ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(1, 5))]
        )
        conj = tc("R(x)")
        ((assignment, _images),) = list(find_temporal_homomorphisms(conj, inst))
        assert interval_of(assignment, conj.shared_variable) == Interval(1, 5)

    def test_interval_of_rejects_data_binding(self):
        inst = ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(1, 5))]
        )
        conj = tc("R(x)")
        ((assignment, _images),) = list(find_temporal_homomorphisms(conj, inst))
        with pytest.raises(FormulaError):
            interval_of(assignment, Variable("x"))


class TestEmptyIntersectionProperty:
    def test_overlapping_joinable_facts_violate(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
            ]
        )
        assert not has_empty_intersection_property(inst, [tc("R(x) & S(y)")])
        violation = find_violation(inst, [tc("R(x) & S(y)")])
        assert violation is not None
        assert len(violation.facts) == 2

    def test_equal_stamps_satisfy(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(1, 5)),
            ]
        )
        assert has_empty_intersection_property(inst, [tc("R(x) & S(y)")])

    def test_disjoint_stamps_satisfy(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 3)),
                concrete_fact("S", "a", interval=Interval(5, 9)),
            ]
        )
        assert has_empty_intersection_property(inst, [tc("R(x) & S(y)")])

    def test_unrelated_overlap_is_fine(self):
        # The facts overlap but no conjunction matches them jointly.
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "b", interval=Interval(3, 9)),
            ]
        )
        assert has_empty_intersection_property(inst, [tc("R(x) & S(x)")])

    def test_self_join_overlap_detected(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("R", "b", interval=Interval(3, 9)),
            ]
        )
        assert not has_empty_intersection_property(inst, [tc("R(x) & R(y)")])

    def test_figure4_not_normalized_wrt_salary_join(self, source):
        assert not is_normalized(source, [salary_conjunction()])

    def test_figure5_is_normalized(self, source):
        normalized = normalize(source, [salary_conjunction()])
        assert is_normalized(normalized, [salary_conjunction()])


class TestAlgorithm1:
    def test_theorem15_output_is_normalized(self, source):
        conjs = [salary_conjunction()]
        assert is_normalized(normalize(source, conjs), conjs)

    def test_example14_output_normalized(self):
        inst = algorithm1_example_instance()
        conjs = algorithm1_example_conjunctions()
        assert is_normalized(normalize(inst, conjs), conjs)

    def test_example14_report_counts(self):
        inst = algorithm1_example_instance()
        out, report = normalize_with_report(inst, algorithm1_example_conjunctions())
        # Example 14: S = {{f1,f2},{f2,f3},{f4,f5}} then two components.
        assert report.matched_sets == 3
        assert report.components == 2
        assert report.input_size == 5
        assert report.output_size == 13
        assert len(out) == 13

    def test_untouched_facts_survive(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
                concrete_fact("Z", "solo", interval=Interval(0, 100)),
            ]
        )
        out = normalize(inst, [tc("R(x) & S(y)")])
        assert concrete_fact("Z", "solo", interval=Interval(0, 100)) in out

    def test_no_conjunctions_no_change(self, source):
        assert normalize(source, []) == source

    def test_semantics_preserved(self, source):
        from repro.abstract_view import semantics

        normalized = normalize(source, [salary_conjunction()])
        assert semantics(normalized).same_snapshots_as(semantics(source))

    def test_normalize_smaller_or_equal_than_naive(self, source):
        smart = normalize(source, [salary_conjunction()])
        naive = naive_normalize(source)
        assert len(smart) <= len(naive)

    def test_null_annotations_follow_fragments(self):
        from repro.relational.terms import AnnotatedNull
        from repro.concrete import ConcreteFact

        inst = ConcreteInstance(
            [
                ConcreteFact(
                    "R", (AnnotatedNull("N", Interval(1, 9)),), Interval(1, 9)
                ),
                concrete_fact("S", "a", interval=Interval(4, 6)),
            ]
        )
        out = normalize(inst, [tc("R(x) & S(y)")])
        for item in out.facts_of("R"):
            for null in item.nulls():
                assert null.annotation == item.interval


class TestNaiveNormalization:
    def test_fragments_at_all_endpoints(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(0, 10)),
                concrete_fact("S", "b", interval=Interval(4, 6)),
            ]
        )
        out = naive_normalize(inst)
        assert len(out.facts_of("R")) == 3  # [0,4) [4,6) [6,10)
        assert len(out.facts_of("S")) == 1

    def test_normalized_wrt_any_conjunctions(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 7)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
                concrete_fact("P", "a", interval=Interval(6, 12)),
            ]
        )
        out = naive_normalize(inst)
        for phi in [tc("R(x) & S(y)"), tc("S(x) & P(y)"), tc("R(x) & P(y)")]:
            assert is_normalized(out, [phi])

    def test_idempotent(self, source):
        once = naive_normalize(source)
        assert naive_normalize(once) == once

    def test_semantics_preserved(self, source):
        from repro.abstract_view import semantics

        assert semantics(naive_normalize(source)).same_snapshots_as(
            semantics(source)
        )

    def test_empty_instance(self):
        assert naive_normalize(ConcreteInstance()) == ConcreteInstance()


class TestSweepEngineAndLog:
    def test_pairwise_reference_matches_sweep(self):
        inst = algorithm1_example_instance()
        conjs = algorithm1_example_conjunctions()
        swept, sweep_report = normalize_with_report(inst, conjs, engine="sweep")
        paired, pair_report = normalize_with_report(inst, conjs, engine="pairwise")
        assert swept == paired
        assert sweep_report.matched_pairs == pair_report.matched_pairs == 3
        # Example 14's three matched sets are three overlap sets too.
        assert sweep_report.matched_sets == 3
        # The reference engine reports the historical count in both.
        assert pair_report.matched_sets == pair_report.matched_pairs

    def test_symmetric_pairs_count_self_matches_and_orders(self):
        # Two overlapping R facts: 2 self-matches + both ordered pairs.
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("R", "b", interval=Interval(3, 9)),
            ]
        )
        _, report = normalize_with_report(inst, [tc("R(x) & R(y)")])
        assert report.matched_pairs == 4
        assert report.matched_sets == 1  # one overlap set {f, g}

    def test_pairwise_rejects_logging(self):
        inst = ConcreteInstance()
        with pytest.raises(ValueError):
            normalize_with_report(inst, [], engine="pairwise", record=True)

    def test_record_and_replay_counts(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
                concrete_fact("R", "b", interval=Interval(10, 12)),
                concrete_fact("S", "b", interval=Interval(20, 22)),
            ]
        )
        conjs = [tc("R(x) & S(x)")]
        out1, rec = normalize_with_report(inst, conjs, record=True)
        assert rec.log is not None
        assert rec.groups == 2 and rec.groups_replayed == 0
        out2, rep = normalize_with_report(inst, conjs, previous=rec.log)
        assert out2 == out1
        assert rep.groups_replayed == rep.groups == 2
        assert rep.components_replayed == rep.components
        assert rep.matched_pairs == rec.matched_pairs
        assert rep.matched_sets == rec.matched_sets

    def test_partial_churn_replays_untouched_groups(self):
        shared = [
            concrete_fact("R", "a", interval=Interval(1, 5)),
            concrete_fact("S", "a", interval=Interval(3, 9)),
        ]
        base = ConcreteInstance(
            [*shared,
             concrete_fact("R", "b", interval=Interval(1, 5)),
             concrete_fact("S", "b", interval=Interval(3, 9))]
        )
        churned = ConcreteInstance(
            [*shared,
             concrete_fact("R", "b", interval=Interval(2, 5)),
             concrete_fact("S", "b", interval=Interval(3, 9))]
        )
        conjs = [tc("R(x) & S(x)")]
        _, rec = normalize_with_report(base, conjs, record=True)
        replayed, rep = normalize_with_report(churned, conjs, previous=rec.log)
        fresh, fresh_rep = normalize_with_report(churned, conjs)
        assert replayed == fresh
        assert rep.groups == 2 and rep.groups_replayed == 1
        assert rep.fragments_created == fresh_rep.fragments_created

    def test_log_for_other_conjunctions_is_ignored(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
            ]
        )
        _, rec = normalize_with_report(inst, [tc("R(x) & S(x)")], record=True)
        out, rep = normalize_with_report(
            inst, [tc("R(x) & S(y)")], previous=rec.log
        )
        assert rep.groups_replayed == 0
        assert out == normalize(inst, [tc("R(x) & S(y)")])

    def test_replayed_log_chains_forward(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
            ]
        )
        conjs = [tc("R(x) & S(x)")]
        _, first = normalize_with_report(inst, conjs, record=True)
        _, second = normalize_with_report(
            inst, conjs, previous=first.log, record=True
        )
        assert second.log is not None
        _, third = normalize_with_report(inst, conjs, previous=second.log)
        assert third.groups_replayed == third.groups
