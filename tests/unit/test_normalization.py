"""Unit tests for normalization: Definition 10, Theorem 11, Algorithm 1."""

import pytest

from repro.concrete import (
    ConcreteInstance,
    concrete_fact,
    find_temporal_homomorphisms,
    find_violation,
    has_empty_intersection_property,
    interval_of,
    is_normalized,
    naive_normalize,
    normalize,
    normalize_with_report,
)
from repro.errors import FormulaError
from repro.relational import Constant, TemporalConjunction, Variable, parse_conjunction
from repro.temporal import Interval
from repro.workloads import (
    algorithm1_example_conjunctions,
    algorithm1_example_instance,
    salary_conjunction,
)


def tc(text: str) -> TemporalConjunction:
    return TemporalConjunction.from_conjunction(parse_conjunction(text))


class TestTemporalHomomorphisms:
    def test_shared_variable_requires_equal_stamps(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(1, 5)),
                concrete_fact("S", "b", interval=Interval(2, 5)),
            ]
        )
        matches = list(find_temporal_homomorphisms(tc("R(x) & S(y)"), inst))
        # Only the S-fact with the SAME stamp joins under shared t.
        assert len(matches) == 1
        assignment, images = matches[0]
        assert assignment[Variable("y")] == Constant("a")

    def test_decoupled_variables_allow_different_stamps(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "b", interval=Interval(7, 9)),
            ]
        )
        decoupled = tc("R(x) & S(y)").normalized()
        matches = list(find_temporal_homomorphisms(decoupled, inst))
        assert len(matches) == 1

    def test_no_match_on_unsatisfied_join(self):
        inst = ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(1, 5))]
        )
        assert list(find_temporal_homomorphisms(tc("R(x) & S(x)"), inst)) == []

    def test_interval_of_unwraps(self):
        inst = ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(1, 5))]
        )
        conj = tc("R(x)")
        ((assignment, _images),) = list(find_temporal_homomorphisms(conj, inst))
        assert interval_of(assignment, conj.shared_variable) == Interval(1, 5)

    def test_interval_of_rejects_data_binding(self):
        inst = ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(1, 5))]
        )
        conj = tc("R(x)")
        ((assignment, _images),) = list(find_temporal_homomorphisms(conj, inst))
        with pytest.raises(FormulaError):
            interval_of(assignment, Variable("x"))


class TestEmptyIntersectionProperty:
    def test_overlapping_joinable_facts_violate(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
            ]
        )
        assert not has_empty_intersection_property(inst, [tc("R(x) & S(y)")])
        violation = find_violation(inst, [tc("R(x) & S(y)")])
        assert violation is not None
        assert len(violation.facts) == 2

    def test_equal_stamps_satisfy(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(1, 5)),
            ]
        )
        assert has_empty_intersection_property(inst, [tc("R(x) & S(y)")])

    def test_disjoint_stamps_satisfy(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 3)),
                concrete_fact("S", "a", interval=Interval(5, 9)),
            ]
        )
        assert has_empty_intersection_property(inst, [tc("R(x) & S(y)")])

    def test_unrelated_overlap_is_fine(self):
        # The facts overlap but no conjunction matches them jointly.
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "b", interval=Interval(3, 9)),
            ]
        )
        assert has_empty_intersection_property(inst, [tc("R(x) & S(x)")])

    def test_self_join_overlap_detected(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("R", "b", interval=Interval(3, 9)),
            ]
        )
        assert not has_empty_intersection_property(inst, [tc("R(x) & R(y)")])

    def test_figure4_not_normalized_wrt_salary_join(self, source):
        assert not is_normalized(source, [salary_conjunction()])

    def test_figure5_is_normalized(self, source):
        normalized = normalize(source, [salary_conjunction()])
        assert is_normalized(normalized, [salary_conjunction()])


class TestAlgorithm1:
    def test_theorem15_output_is_normalized(self, source):
        conjs = [salary_conjunction()]
        assert is_normalized(normalize(source, conjs), conjs)

    def test_example14_output_normalized(self):
        inst = algorithm1_example_instance()
        conjs = algorithm1_example_conjunctions()
        assert is_normalized(normalize(inst, conjs), conjs)

    def test_example14_report_counts(self):
        inst = algorithm1_example_instance()
        out, report = normalize_with_report(inst, algorithm1_example_conjunctions())
        # Example 14: S = {{f1,f2},{f2,f3},{f4,f5}} then two components.
        assert report.matched_sets == 3
        assert report.components == 2
        assert report.input_size == 5
        assert report.output_size == 13
        assert len(out) == 13

    def test_untouched_facts_survive(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 5)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
                concrete_fact("Z", "solo", interval=Interval(0, 100)),
            ]
        )
        out = normalize(inst, [tc("R(x) & S(y)")])
        assert concrete_fact("Z", "solo", interval=Interval(0, 100)) in out

    def test_no_conjunctions_no_change(self, source):
        assert normalize(source, []) == source

    def test_semantics_preserved(self, source):
        from repro.abstract_view import semantics

        normalized = normalize(source, [salary_conjunction()])
        assert semantics(normalized).same_snapshots_as(semantics(source))

    def test_normalize_smaller_or_equal_than_naive(self, source):
        smart = normalize(source, [salary_conjunction()])
        naive = naive_normalize(source)
        assert len(smart) <= len(naive)

    def test_null_annotations_follow_fragments(self):
        from repro.relational.terms import AnnotatedNull
        from repro.concrete import ConcreteFact

        inst = ConcreteInstance(
            [
                ConcreteFact(
                    "R", (AnnotatedNull("N", Interval(1, 9)),), Interval(1, 9)
                ),
                concrete_fact("S", "a", interval=Interval(4, 6)),
            ]
        )
        out = normalize(inst, [tc("R(x) & S(y)")])
        for item in out.facts_of("R"):
            for null in item.nulls():
                assert null.annotation == item.interval


class TestNaiveNormalization:
    def test_fragments_at_all_endpoints(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(0, 10)),
                concrete_fact("S", "b", interval=Interval(4, 6)),
            ]
        )
        out = naive_normalize(inst)
        assert len(out.facts_of("R")) == 3  # [0,4) [4,6) [6,10)
        assert len(out.facts_of("S")) == 1

    def test_normalized_wrt_any_conjunctions(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 7)),
                concrete_fact("S", "a", interval=Interval(3, 9)),
                concrete_fact("P", "a", interval=Interval(6, 12)),
            ]
        )
        out = naive_normalize(inst)
        for phi in [tc("R(x) & S(y)"), tc("S(x) & P(y)"), tc("R(x) & P(y)")]:
            assert is_normalized(out, [phi])

    def test_idempotent(self, source):
        once = naive_normalize(source)
        assert naive_normalize(once) == once

    def test_semantics_preserved(self, source):
        from repro.abstract_view import semantics

        assert semantics(naive_normalize(source)).same_snapshots_as(
            semantics(source)
        )

    def test_empty_instance(self):
        assert naive_normalize(ConcreteInstance()) == ConcreteInstance()
