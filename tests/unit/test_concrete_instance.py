"""Unit tests for concrete temporal instances."""

import pytest

from repro.concrete import ConcreteFact, ConcreteInstance, concrete_fact
from repro.relational import Constant, Instance, fact
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval, IntervalSet, interval


@pytest.fixture
def instance(source) -> ConcreteInstance:
    """Figure 4 instance from the shared fixture."""
    return source


class TestBasics:
    def test_len_iter_contains(self, instance):
        assert len(instance) == 5
        listed = list(instance)
        assert len(listed) == 5
        assert concrete_fact(
            "E", "Ada", "IBM", interval=Interval(2012, 2014)
        ) in instance

    def test_add_and_discard(self):
        inst = ConcreteInstance()
        item = concrete_fact("R", "a", interval=Interval(1, 3))
        assert inst.add(item)
        assert not inst.add(item)
        assert inst.discard(item)
        assert not inst.discard(item)
        assert len(inst) == 0

    def test_replace_swaps_fragments(self):
        inst = ConcreteInstance()
        item = concrete_fact("R", "a", interval=Interval(1, 5))
        inst.add(item)
        inst.replace(item, item.fragment([3]))
        assert len(inst) == 2
        assert item not in inst

    def test_relation_names_and_facts_of(self, instance):
        assert instance.relation_names() == ("E", "S")
        assert len(instance.facts_of("E")) == 3

    def test_equality_set_semantics(self, instance):
        clone = ConcreteInstance(instance.facts())
        assert clone == instance
        assert hash(clone) == hash(instance)


class TestTemporalStructure:
    def test_breakpoints(self, instance):
        assert instance.breakpoints() == (2012, 2013, 2014, 2015, 2018)

    def test_horizon(self, instance):
        assert instance.horizon() == 2018

    def test_active_time(self, instance):
        assert instance.active_time() == IntervalSet.of(interval(2012))

    def test_intervals(self, instance):
        assert len(instance.intervals()) == 5

    def test_empty_instance_horizon_zero(self):
        assert ConcreteInstance().horizon() == 0


class TestSnapshots:
    def test_snapshot_2013(self, instance):
        snap = instance.snapshot(2013)
        assert snap == Instance(
            [
                fact("E", "Ada", "IBM"),
                fact("E", "Bob", "IBM"),
                fact("S", "Ada", "18k"),
            ]
        )

    def test_snapshot_2012(self, instance):
        assert instance.snapshot(2012) == Instance([fact("E", "Ada", "IBM")])

    def test_snapshot_before_everything_is_empty(self, instance):
        assert not instance.snapshot(2000)

    def test_snapshot_projects_nulls(self):
        null = AnnotatedNull("N", Interval(1, 3))
        inst = ConcreteInstance(
            [concrete_fact("R", "a", null, interval=Interval(1, 3))]
        )
        snap = inst.snapshot(2)
        (item,) = snap.facts()
        assert item.args[1].name == "N@2"

    def test_facts_at(self, instance):
        covering = instance.facts_at(2016)
        assert {f.relation for f in covering} == {"E", "S"}
        assert len(covering) == 4


class TestLiftedView:
    def test_lifted_roundtrip(self, instance):
        lifted = instance.lifted()
        assert len(lifted) == len(instance)
        back = {ConcreteInstance.from_lifted_fact(item) for item in lifted.facts()}
        assert back == instance.facts()

    def test_lifted_view_tracks_mutation(self, instance):
        # The lifted view is maintained incrementally: adds and removals
        # show up without a rebuild.
        size_before = len(instance.lifted())
        added = concrete_fact("E", "Zoe", "SUN", interval=interval(2020))
        instance.add(added)
        assert len(instance.lifted()) == size_before + 1
        assert added.lifted() in instance.lifted()
        instance.discard(added)
        assert len(instance.lifted()) == size_before
        assert added.lifted() not in instance.lifted()

    def test_from_lifted_fact_requires_interval_column(self):
        from repro.errors import InstanceError

        with pytest.raises(InstanceError):
            ConcreteInstance.from_lifted_fact(fact("R", "a", "b"))


class TestNullsAndCompleteness:
    def test_complete_instance(self, instance):
        assert instance.is_complete
        assert instance.nulls() == frozenset()

    def test_nulls_reported(self):
        null = AnnotatedNull("N", Interval(1, 3))
        inst = ConcreteInstance(
            [concrete_fact("R", "a", null, interval=Interval(1, 3))]
        )
        assert inst.nulls() == {null}
        assert not inst.is_complete

    def test_constants(self, instance):
        values = {c.value for c in instance.constants()}
        assert {"Ada", "Bob", "IBM", "Google", "18k", "13k"} == values


class TestCoalescing:
    def test_figure4_is_coalesced(self, instance):
        assert instance.is_coalesced()

    def test_adjacent_value_equal_facts_not_coalesced(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 3)),
                concrete_fact("R", "a", interval=Interval(3, 5)),
            ]
        )
        assert not inst.is_coalesced()
        merged = inst.coalesce()
        assert merged == ConcreteInstance(
            [concrete_fact("R", "a", interval=Interval(1, 5))]
        )

    def test_different_values_stay_apart(self):
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", interval=Interval(1, 3)),
                concrete_fact("R", "b", interval=Interval(3, 5)),
            ]
        )
        assert inst.is_coalesced()
        assert inst.coalesce() == inst

    def test_null_fragments_recoalesce(self):
        # Fragments of one unknown merge back into a wider annotation.
        inst = ConcreteInstance(
            [
                ConcreteFact("R", (AnnotatedNull("N", Interval(1, 3)),), Interval(1, 3)),
                ConcreteFact("R", (AnnotatedNull("N", Interval(3, 6)),), Interval(3, 6)),
            ]
        )
        merged = inst.coalesce()
        (item,) = merged.facts()
        assert item.interval == Interval(1, 6)
        assert item.data == (AnnotatedNull("N", Interval(1, 6)),)

    def test_coalesce_idempotent(self, instance):
        assert instance.coalesce().coalesce() == instance.coalesce()


class TestSubstitution:
    def test_substitute_merges(self):
        null = AnnotatedNull("N", Interval(1, 3))
        inst = ConcreteInstance(
            [
                concrete_fact("R", "a", null, interval=Interval(1, 3)),
                concrete_fact("R", "a", "b", interval=Interval(1, 3)),
            ]
        )
        merged = inst.substitute({null: Constant("b")})
        assert len(merged) == 1

    def test_substitute_preserves_original(self):
        null = AnnotatedNull("N", Interval(1, 3))
        inst = ConcreteInstance(
            [concrete_fact("R", null, interval=Interval(1, 3))]
        )
        inst.substitute({null: Constant("b")})
        assert inst.nulls() == {null}

    def test_union(self, instance):
        extra = ConcreteInstance(
            [concrete_fact("E", "Zoe", "SUN", interval=interval(2020))]
        )
        combined = instance.union(extra)
        assert len(combined) == 6
        assert len(instance) == 5
