"""Shared fixtures: the paper's running example and scenario builders."""

from __future__ import annotations

import pytest

from repro import (
    ConcreteInstance,
    DataExchangeSetting,
)
from repro.workloads import (
    employment_setting,
    employment_source_abstract,
    employment_source_concrete,
    medical_scenario,
    scheduling_scenario,
)


@pytest.fixture
def setting() -> DataExchangeSetting:
    """Example 1/6: the employment schema mapping."""
    return employment_setting()


@pytest.fixture
def source() -> ConcreteInstance:
    """Figure 4: the concrete employment source instance."""
    return employment_source_concrete()


@pytest.fixture
def abstract_source():
    """Figure 1: the abstract view of the employment source."""
    return employment_source_abstract()


@pytest.fixture
def medical():
    return medical_scenario()


@pytest.fixture
def scheduling():
    return scheduling_scenario()
