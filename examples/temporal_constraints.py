#!/usr/bin/env python3
"""The Section 7 extension: ♦⁻ (sometime-in-the-past) dependencies.

The paper closes with the PhD example: every PhD graduate must have been,
at some strictly earlier time, a PhD candidate with an adviser and topic.
This example runs our ♦⁻ chase policy — one witness placed immediately
before the earliest firing — and shows both the success and the
unsatisfiable-at-time-zero failure mode.

Run:  python examples/temporal_constraints.py
"""

from repro import AbstractInstance, Instance, fact, interval
from repro.extensions import PastTGD, past_chase, satisfies_past_tgd
from repro.serialize import render_abstract_snapshots


def main() -> None:
    dependency = PastTGD.parse(
        "PhDgrad(n) -> EXISTS adv, top . PhDCan(n, adv, top)",
        name="grad-was-candidate",
    )
    print(f"Dependency: {dependency}")

    print("\n=== Source: two graduations ===")
    source = AbstractInstance.from_snapshot_runs(
        [
            (Instance([fact("PhDgrad", "maya")]), interval(6)),
            (Instance([fact("PhDgrad", "tom")]), interval(9, 12)),
        ]
    )
    print(render_abstract_snapshots(source, range(4, 13)))

    print("\n=== ♦⁻ chase: witnesses placed just before the earliest firing ===")
    result = past_chase(source, [dependency])
    assert result.succeeded
    print(f"witnesses placed: {result.witnesses_placed}")
    print(render_abstract_snapshots(result.target, range(4, 13)))

    print("\nsatisfies ♦⁻ dependency:", satisfies_past_tgd(source, result.target, dependency))
    print("(maya graduated at 6 → candidate fact at snapshot 5;")
    print(" tom graduated from 9 on → candidate fact at snapshot 8;")
    print(" adviser and topic are per-snapshot unknowns)")

    print("\n=== Failure mode: graduating at time 0 has no past ===")
    degenerate = AbstractInstance.from_snapshot_runs(
        [(Instance([fact("PhDgrad", "eve")]), interval(0))]
    )
    failed = past_chase(degenerate, [dependency])
    print(f"chase failed: {failed.failed}")
    print(f"dependencies unsatisfiable at time 0: {failed.unsatisfiable_at_zero}")


if __name__ == "__main__":
    main()
