#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Reproduces the pipeline of the paper on the Ada/Bob employment database:

* Figure 4  — the concrete source instance ``Ic``;
* Figure 5  — normalization w.r.t. the lhs of σ2+ (Algorithm 1);
* Figure 9  — the c-chase result ``Jc`` (Example 17);
* Figure 3  — the abstract chase, shown as snapshots;
* Figure 10 — the correspondence ``⟦Jc⟧ ∼ chase(⟦Ic⟧)``;
* certain answers to a query over the target schema (Section 5).

Run:  python examples/quickstart.py
"""

from repro import (
    ConjunctiveQuery,
    c_chase,
    certain_answers_concrete,
    employment_setting,
    employment_source_abstract,
    employment_source_concrete,
    normalize,
    semantics,
    verify_correspondence,
)
from repro.abstract_view import abstract_chase
from repro.serialize import render_abstract_snapshots, render_concrete_instance
from repro.workloads import salary_conjunction


def main() -> None:
    setting = employment_setting()
    source = employment_source_concrete()

    print("=== Schema mapping (Example 1/6) ===")
    print(setting.describe())

    print("\n=== Figure 4: concrete source instance Ic ===")
    print(render_concrete_instance(source, setting.lifted_source_schema()))

    print("\n=== Figure 1: some snapshots of the abstract view ⟦Ic⟧ ===")
    print(render_abstract_snapshots(employment_source_abstract(), range(2012, 2019)))

    print("\n=== Figure 5: Ic normalized w.r.t. E+(n,c,t) ∧ S+(n,s,t) ===")
    normalized = normalize(source, [salary_conjunction()])
    print(render_concrete_instance(normalized, setting.lifted_source_schema()))

    print("\n=== Figure 9: the c-chase result Jc (Example 17) ===")
    result = c_chase(source, setting)
    assert result.succeeded
    print(render_concrete_instance(result.target, setting.lifted_target_schema()))
    print(f"({len(result.trace)} chase steps recorded)")

    print("\n=== Figure 3: the abstract chase result, as snapshots ===")
    abstract_result = abstract_chase(semantics(source), setting)
    print(render_abstract_snapshots(abstract_result.unwrap(), range(2012, 2019)))

    print("\n=== Figure 10: does the square commute? ===")
    report = verify_correspondence(source, setting)
    print(f"⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧): {report.holds}")

    print("\n=== Certain answers: who earns what, and when? ===")
    query = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
    answers = certain_answers_concrete(query, source, setting)
    for row, support in answers:
        values = ", ".join(str(v) for v in row)
        print(f"  ({values})  during {support}")


if __name__ == "__main__":
    main()
