#!/usr/bin/env python3
"""Taxi/bicycle rides: the intro's "temporality of facts" domain.

Deployments, driver shifts and fares are exchanged into a fleet log.
This example highlights how the exchange distinguishes what is *certain*
(the cab's metered rates, the driver handover at hour 9) from what is
*unknown* (the bike has no meter — its rate is an interval-annotated
null, so it appears in no certain answer), and prints the trace of the
egd steps that merged the σ1-nulls with the recorded fares.

It also demonstrates the engine's **region scheduler**: the abstract
(snapshot-wise) chase of the same scenario is partitioned across shards
— each shard chases a contiguous block of constancy regions under its
own null namespace — and the per-shard timing report is printed.

Run:  python examples/ride_share.py [--shards N]
          [--executor serial|threads|processes]
"""

import argparse
import time

from repro import ConjunctiveQuery, c_chase, certain_answers_concrete
from repro.abstract_view import abstract_chase, semantics
from repro.serialize import render_concrete_instance
from repro.workloads import ride_share_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards",
        type=int,
        default=3,
        help="regions are partitioned across this many shards (default 3)",
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "threads", "processes"],
        default="serial",
        help="how the shards run (default serial; processes is the only "
        "one that parallelizes CPU-bound chases)",
    )
    args = parser.parse_args()

    scenario = ride_share_scenario()
    print(f"=== Scenario: {scenario.description} ===")
    print(render_concrete_instance(scenario.source))

    print("\n=== Exchanged fleet log (delta-driven c-chase) ===")
    result = c_chase(scenario.source, scenario.setting)
    assert result.succeeded
    print(render_concrete_instance(result.target))

    print("\n=== egd steps that merged unknowns with recorded fares ===")
    for step in result.trace.egd_steps:
        print(f"  {step}")

    print("\n=== Certain answers ===")
    for text in [
        "rates(r) :- Fleet('cab7', z, r)",
        "zones(z) :- Fleet('bike3', z, r)",
        "bike_rate(r) :- Fleet('bike3', z, r)",
        "drivers(d) :- Operates('cab7', d)",
    ]:
        query = ConjunctiveQuery.parse(text)
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        print(f"  {text}")
        if not answers:
            print("    (no certain answers — the value is unknown)")
        for row, support in answers:
            values = ", ".join(str(v) for v in row)
            print(f"    ({values})  during {support}")

    print(f"\n=== Sharded abstract chase (--shards {args.shards}, "
          f"--executor {args.executor}) ===")
    abstract = semantics(scenario.source)
    regions = abstract.regions()
    print(f"timeline has {len(regions)} constancy regions")

    # Untimed warm-up: populate the per-setting task caches and per-term
    # sort keys once, so the two timed runs below are comparable.
    abstract_chase(abstract, scenario.setting)

    started = time.perf_counter()
    serial = abstract_chase(abstract, scenario.setting)
    serial_ms = (time.perf_counter() - started) * 1000

    started = time.perf_counter()
    sharded = abstract_chase(
        abstract,
        scenario.setting,
        shards=args.shards,
        executor=args.executor,
    )
    sharded_ms = (time.perf_counter() - started) * 1000
    assert sharded.succeeded

    print(f"serial run : {serial_ms:7.2f} ms "
          f"({len(serial.region_results)} regions, one null namespace)")
    print(f"sharded run: {sharded_ms:7.2f} ms, per shard:")
    for shard in sharded.shard_reports:
        print(
            f"  shard {shard.shard}: {shard.regions:>3} regions  "
            f"{shard.nulls_issued:>3} nulls (namespace Ns{shard.shard}_*)  "
            f"{shard.seconds * 1000:7.2f} ms"
        )
    print("(shard null namespaces are disjoint by construction; the "
          "merged solution is the serial one up to that renaming)")


if __name__ == "__main__":
    main()
