#!/usr/bin/env python3
"""Taxi/bicycle rides: the intro's "temporality of facts" domain.

Deployments, driver shifts and fares are exchanged into a fleet log.
This example highlights how the exchange distinguishes what is *certain*
(the cab's metered rates, the driver handover at hour 9) from what is
*unknown* (the bike has no meter — its rate is an interval-annotated
null, so it appears in no certain answer), and prints the trace of the
egd steps that merged the σ1-nulls with the recorded fares.

Run:  python examples/ride_share.py
"""

from repro import ConjunctiveQuery, c_chase, certain_answers_concrete
from repro.serialize import render_concrete_instance
from repro.workloads import ride_share_scenario


def main() -> None:
    scenario = ride_share_scenario()
    print(f"=== Scenario: {scenario.description} ===")
    print(render_concrete_instance(scenario.source))

    print("\n=== Exchanged fleet log ===")
    result = c_chase(scenario.source, scenario.setting)
    assert result.succeeded
    print(render_concrete_instance(result.target))

    print("\n=== egd steps that merged unknowns with recorded fares ===")
    for step in result.trace.egd_steps:
        print(f"  {step}")

    print("\n=== Certain answers ===")
    for text in [
        "rates(r) :- Fleet('cab7', z, r)",
        "zones(z) :- Fleet('bike3', z, r)",
        "bike_rate(r) :- Fleet('bike3', z, r)",
        "drivers(d) :- Operates('cab7', d)",
    ]:
        query = ConjunctiveQuery.parse(text)
        answers = certain_answers_concrete(query, scenario.source, scenario.setting)
        print(f"  {text}")
        if not answers:
            print("    (no certain answers — the value is unknown)")
        for row, support in answers:
            values = ", ".join(str(v) for v in row)
            print(f"    ({values})  during {support}")


if __name__ == "__main__":
    main()
