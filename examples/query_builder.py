#!/usr/bin/env python3
"""Building temporal queries compositionally, then joining in time.

The other examples parse query strings; this one assembles the same
queries with the builder API — ``select(...).where(...).join(...)`` —
and shows the two temporal join flavours the literature distinguishes:

* a **sequenced join** evaluates both queries under one shared "now",
  so a pair only qualifies while *both* sides hold simultaneously;
* a **nonsequenced join** treats the timestamps as plain data and pairs
  answers regardless of when each side was true.

The workload is an org chart exchanged into a reporting schema: who
reports to which manager (``Reports``), and who logged which task
(``Log``).

Run:  python examples/query_builder.py
"""

from repro.abstract_view import abstract_chase, semantics
from repro.query import (
    naive_evaluate_abstract,
    nonsequenced_join,
    select,
    sequenced_join,
    val,
)
from repro.workloads import exchange_setting_org, random_org_history


def main() -> None:
    workload = random_org_history(people=6, timeline=30, seed=3)
    setting = exchange_setting_org()
    result = abstract_chase(semantics(workload.instance), setting)
    assert result.succeeded
    abstract = result.target

    print("=== Composing queries with the builder ===")
    reports = (
        select("e", "m").where("Reports", "e", "m").named("reports")
    )
    print(f"  {reports.build()}")
    # join() is where() plus a guard: it insists the new atom shares a
    # variable with the body, catching accidental cross products early.
    managed_tasks = (
        select("m", "t")
        .where("Reports", "e", "m")
        .join("Log", "e", "t", "s")
        .named("managed_tasks")
    )
    print(f"  {managed_tasks.build()}")
    # Constants need val(); bare strings are variables.
    one_manager = (
        select("e").where("Reports", "e", val("mgr0")).named("team0")
    )
    print(f"  {one_manager.build()}")

    print("\n=== Whose tasks roll up to which manager, and when? ===")
    for row, support in naive_evaluate_abstract(
        managed_tasks.build(), abstract
    ):
        values = ", ".join(str(v) for v in row)
        print(f"  ({values})  during {support}")

    print("\n=== Sequenced join: pairs that hold at the same time ===")
    tasks = select("e2", "t").where("Log", "e2", "t", "s").named("tasks")
    # One query, evaluated under a single shared snapshot variable: an
    # (employee, manager, colleague, task) row is certain only while the
    # reporting edge and the task log overlap.
    joined = sequenced_join(reports, tasks)
    print(f"  compiles to: {joined}")
    sequenced = naive_evaluate_abstract(joined, abstract)
    for row, support in list(sequenced)[:5]:
        values = ", ".join(str(v) for v in row)
        print(f"  ({values})  during {support}")

    print("\n=== Nonsequenced join: time as data ===")
    # Answer-level pairing on the shared head column (the employee): task
    # assignments are short and rarely overlap, so pairing them with time
    # as mere data finds far more rows than requiring simultaneity.
    left = select("e", "t").where("Log", "e", "t", "s").build()
    right = select("e", "t2").where("Log", "e", "t2", "s").build()
    left_answers = naive_evaluate_abstract(left, abstract)
    right_answers = naive_evaluate_abstract(right, abstract)
    pairs = nonsequenced_join(left, right, left_answers, right_answers)
    print(f"  {len(pairs)} (employee, task, task') rows — pairs of tasks")
    print("  the same person worked at *any* two times,")
    # The shared head variable e joins the sides, so the sequenced
    # variant has the same (e, t, t2) shape — just time-restricted.
    sequenced_pairs = {
        row for row, _ in naive_evaluate_abstract(
            sequenced_join(left, right), abstract
        )
    }
    print(
        f"  versus {len(sequenced_pairs)} when the assignments must "
        "overlap in time."
    )
    assert sequenced_pairs <= pairs

    print("\n=== Unions compose with | ===")
    either = one_manager | select("e").where("Reports", "e", val("mgr1"))
    for row, support in naive_evaluate_abstract(either, abstract):
        values = ", ".join(str(v) for v in row)
        print(f"  ({values})  during {support}")


if __name__ == "__main__":
    main()
