#!/usr/bin/env python3
"""Inside naïve evaluation: the four-step procedure of Section 5.

Shows each stage of ``q+(Jc)↓`` explicitly — normalize w.r.t. the query,
freeze interval-annotated nulls into fresh constants, evaluate with the
temporal variable bound to stamps, drop rows with fresh constants — and
then verifies Theorem 21 (the concrete answers mean exactly the abstract
naive answers) and Corollary 22 (they are the certain answers).

Run:  python examples/query_answering.py
"""

from repro import (
    ConjunctiveQuery,
    c_chase,
    certain_answers_abstract,
    employment_setting,
    employment_source_concrete,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
    semantics,
    verify_evaluation_correspondence,
)
from repro.concrete import normalize
from repro.serialize import render_concrete_instance


def main() -> None:
    setting = employment_setting()
    source = employment_source_concrete()
    solution = c_chase(source, setting).unwrap()

    print("=== The concrete solution Jc (Figure 9) ===")
    print(render_concrete_instance(solution, setting.lifted_target_schema()))

    query = ConjunctiveQuery.parse("q(n, c) :- Emp(n, c, s)")
    print(f"\nQuery: {query}   (lifted: shared temporal variable t)")

    print("\n--- Step 1: normalize Jc w.r.t. the query body ---")
    normalized = normalize(solution, [query.lift()])
    print(f"{len(solution)} facts -> {len(normalized)} facts")

    print("\n--- Steps 2-4: freeze nulls, evaluate, drop fresh constants ---")
    answers = naive_evaluate_concrete(query, solution)
    print(f"q+(Jc)↓ = {answers}")

    print("\n--- Canonical temporal answers (stamps coalesced) ---")
    print(answers.to_temporal())

    print("\n=== Theorem 21: ⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓ ===")
    print("holds:", verify_evaluation_correspondence(query, solution))
    print("abstract side:", naive_evaluate_abstract(query, semantics(solution)))

    print("\n=== Corollary 22: these are the certain answers ===")
    certain = certain_answers_abstract(query, semantics(source), setting)
    print("certain(q, ⟦Ic⟧, M) =", certain)
    print("equal to ⟦q+(Jc)↓⟧:", certain == answers.to_temporal())

    print("\n=== A query whose answer needs the unknown dropped ===")
    salary_query = ConjunctiveQuery.parse("sal(n, s) :- Emp(n, 'IBM', s)")
    print(f"Query: {salary_query}")
    print("answers:", naive_evaluate_concrete(salary_query, solution).to_temporal())
    print("(Ada@2012 and Bob@2013-2014 rows are dropped: their salary is an")
    print(" interval-annotated null, not a certain value)")


if __name__ == "__main__":
    main()
