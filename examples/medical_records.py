#!/usr/bin/env python3
"""Medical-records exchange: unknowns, failure detection, queries.

The paper's introduction motivates temporal data exchange with medical
systems.  This example exchanges admissions/diagnoses/physicians into a
case registry and shows three things the framework gives you:

1. interval-annotated nulls standing for *not-yet-diagnosed* periods,
2. a hard failure (no solution) when overlapping contradictory diagnoses
   hit the case egd — Theorem 19(2) in action,
3. certain answers that are robust across all possible solutions.

Run:  python examples/medical_records.py
"""

from repro import ConjunctiveQuery, c_chase, certain_answers_concrete
from repro.serialize import render_concrete_instance
from repro.workloads import medical_conflicting_scenario, medical_scenario


def main() -> None:
    scenario = medical_scenario()
    print(f"=== Scenario: {scenario.description} ===")
    print(render_concrete_instance(scenario.source))

    print("\n=== Exchanged case registry (c-chase result) ===")
    result = c_chase(scenario.source, scenario.setting)
    assert result.succeeded
    print(render_concrete_instance(result.target))
    unknowns = sorted(str(null) for null in result.target.nulls())
    print(f"\nUnknown values introduced by the exchange: {unknowns}")
    print("(alice's condition in days 1-3 is unknown — and the annotation")
    print(" says the unknown may differ day to day, as the semantics demands)")

    print("\n=== Querying: which ward treated which condition, when? ===")
    query = ConjunctiveQuery.parse("q(w, c) :- Case(p, w, c)")
    answers = certain_answers_concrete(query, scenario.source, scenario.setting)
    for row, support in answers:
        values = ", ".join(str(v) for v in row)
        print(f"  ({values})  during {support}")

    print("\n=== A contradictory source: the exchange must fail ===")
    conflict = medical_conflicting_scenario()
    failed = c_chase(conflict.source, conflict.setting)
    print(f"chase failed: {failed.failed}")
    print(f"reason: {failed.failure}")
    print("By Theorem 19(2), no target instance satisfies the mapping —")
    print("the overlapping diagnoses contradict the one-condition egd.")


if __name__ == "__main__":
    main()
