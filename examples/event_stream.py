#!/usr/bin/env python3
"""Event-sourced ingestion: from a live event log to a chased target.

Upstream systems rarely hand you a ready-made temporal instance — they
emit *event streams*: "employee p3 was hired", "p3 transferred", "p3
was assigned task t17".  This example runs the full ingestion pipeline
on the org-chart domain:

* an :class:`~repro.events.EventMapping` compiles entity/relationship
  events into the interval-stamped source relations the exchange
  setting expects;
* :meth:`~repro.events.EventLog.snapshot_at` replays the log up to any
  time point — the whole history is derived, never stored;
* arrival order does not matter: any permutation of the lines compiles
  to a byte-identical snapshot, corrections (same id, higher revision)
  supersede in place, and genuinely late arrivals park as *pending*
  until their history shows up;
* :meth:`~repro.events.EventLog.follow` turns each ingested batch into
  the :class:`~repro.deltas.SourceDelta` a live consumer applies, and
  feeding those deltas through the incremental chase keeps a target
  that is byte-identical to chasing the final snapshot from scratch.

Run:  python examples/event_stream.py
"""

import json

from repro import EventLog, c_chase
from repro.chase.incremental import chase_source_delta
from repro.concrete import ConcreteInstance
from repro.serialize import concrete_instance_to_json
from repro.workloads import (
    exchange_setting_org,
    late_arrival_batches,
    org_event_mapping,
    org_event_stream,
)


def canonical(instance) -> str:
    return json.dumps(concrete_instance_to_json(instance), sort_keys=True)


def main() -> None:
    mapping = org_event_mapping()
    events = org_event_stream(people=16, timeline=48, seed=42)
    print("=== The stream ===")
    print(f"{len(events)} wire-shape events over the org-chart domain")
    for line in events[:3]:
        print("  " + json.dumps(line))
    print("  ...")

    print("\n=== Compile: the log is the system of record ===")
    log = EventLog(mapping)
    report = log.ingest(events)
    print(
        f"ingested: {report.accepted} events, {report.corrections} "
        f"corrections, {report.duplicates} duplicates "
        f"(stale revisions arriving after their correction)"
    )
    print(f"log horizon: point {log.horizon} on {mapping.scale.unit} "
          f"since {mapping.scale.epoch}")
    for when in (0, 12, 24, None):
        label = "horizon" if when is None else f"t={when}"
        facts = len(list(log.snapshot_at(when).facts()))
        print(f"snapshot_at({label}): {facts} coalesced source facts")

    print("\n=== Permutation invariance ===")
    shuffled = EventLog(mapping)
    shuffled.ingest(list(reversed(events)))
    same = canonical(shuffled.snapshot_at(None)) == canonical(log.snapshot_at(None))
    print(f"reversed arrival order, byte-identical snapshot: {same}")

    print("\n=== Following the log into an incremental chase ===")
    setting = exchange_setting_org()
    batches = late_arrival_batches(events, batches=4, late_fraction=0.25, seed=7)
    live = EventLog(mapping)
    cursor = live.follow()
    source = ConcreteInstance()
    state = None
    result = None
    for number, batch in enumerate(batches):
        batch_report = live.ingest(batch)
        delta = cursor.advance()
        source, result = chase_source_delta(source, delta, setting, state=state)
        state = result.replay_state
        print(
            f"batch {number}: {batch_report.accepted} events "
            f"({batch_report.out_of_order} behind the horizon, "
            f"{batch_report.pending} pending), "
            f"delta +{len(delta.add)}/-{len(delta.remove)}, "
            f"target now {len(list(result.target.facts()))} facts"
        )
    print(f"pending after final batch: {len(live.pending_events())}")

    cold = c_chase(log.snapshot_at(None), setting)
    identical = canonical(result.target) == canonical(cold.target)
    print(f"live view ≡ cold chase: {identical}")


if __name__ == "__main__":
    main()
