#!/usr/bin/env python3
"""Project-scheduling exchange: normalization at work, interval queries.

Planning data (tasks, assignments, contract rates) is exchanged into a
staffing schema.  Assignments and rates change at different moments, so
the join tgd only fires after normalization fragments the facts — this
example makes that machinery visible, then asks staffing questions.

Run:  python examples/project_scheduling.py
"""

from repro import ConjunctiveQuery, UnionQuery, c_chase, certain_answers_concrete
from repro.concrete import normalize_with_report
from repro.serialize import render_concrete_instance
from repro.workloads import scheduling_scenario


def main() -> None:
    scenario = scheduling_scenario()
    print(f"=== Scenario: {scenario.description} ===")
    print(render_concrete_instance(scenario.source))

    print("\n=== Normalization w.r.t. the mapping's left-hand sides ===")
    conjunctions = scenario.setting.lifted_st_lhs_conjunctions()
    normalized, report = normalize_with_report(scenario.source, conjunctions)
    print(
        f"Algorithm 1: {report.input_size} facts -> {report.output_size} facts "
        f"({report.components} overlap components, "
        f"{report.facts_fragmented} facts fragmented)"
    )

    print("\n=== Exchanged staffing data ===")
    result = c_chase(scenario.source, scenario.setting)
    assert result.succeeded
    print(render_concrete_instance(result.target))

    print("\n=== Who is staffed on apollo, at what fee, and when? ===")
    query = ConjunctiveQuery.parse("q(e, f) :- Staff(e, 'apollo', f)")
    answers = certain_answers_concrete(query, scenario.source, scenario.setting)
    for row, support in answers:
        values = ", ".join(str(v) for v in row)
        print(f"  ({values})  during {support}")
    print("(engineers without a contracted rate appear in no certain answer —")
    print(" their fee is an interval-annotated unknown)")

    print("\n=== Union query: every engagement, on any project ===")
    union = UnionQuery.of(
        "q(e) :- Staff(e, 'apollo', f)",
        "q(e) :- Staff(e, 'hermes', f)",
    )
    answers = certain_answers_concrete(union, scenario.source, scenario.setting)
    for row, support in answers:
        values = ", ".join(str(v) for v in row)
        print(f"  ({values})  during {support}")


if __name__ == "__main__":
    main()
