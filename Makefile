# One-command entry points for the repo's verification workflows.
#
#   make test          - tier-1: full test suite (fails fast)
#   make bench-smoke   - run every benchmark module once, timings disabled
#   make bench         - full timed benchmark run
#   make bench-compare - timed run into $(BENCH_OUT), then fail if any
#                        benchmark regressed >20% vs BENCH_baseline.json
#                        (override the output: make bench-compare BENCH_OUT=x.json)
#   make bench-trend   - per-benchmark minimums across the whole committed
#                        BENCH_*.json series (informational, no gate)
#   make coverage      - tests under pytest-cov: fail under $(COV_MIN)%
#                        line coverage of repro, HTML report in htmlcov/
#   make verify-incremental - the incremental≡full abstract-chase
#                        equivalence suite (unit chains + region-sweep
#                        edge cases + Hypothesis property tests)
#   make lint          - ruff over the whole tree (needs `pip install ruff`)
#   make analyze       - repro.analysis invariant linter over src/
#                        (stdlib-only; TDX001-TDX006, see docs/architecture.md)
#   make serve         - run the resident chase daemon on $(SERVE_PORT)
#                        (chase-as-a-service; see docs/server.md)
#   make verify-server - the daemon's end-to-end suite + a short
#                        throughput smoke over real HTTP
#   make verify        - test + bench-smoke + verify-incremental + analyze
#
# CI (.github/workflows/ci.yml) runs exactly these targets — test and
# verify-incremental on a Python 3.11/3.12/3.13 matrix, bench-smoke
# (skipped on doc-only pushes), lint, coverage, a multi-core
# shard-parity pass, an offline `pip install . --no-build-isolation
# --no-index` job, and a scheduled/manual bench-compare gate — so the
# workflow file is the canonical, always-exercised verify recipe.

PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)
BENCH_OUT ?= BENCH_pr10.json
COV_MIN ?= 85
SERVE_PORT ?= 8765

.PHONY: test bench-smoke bench bench-compare bench-trend coverage verify \
	verify-incremental verify-server serve lint analyze \
	install-editable install

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-disable

bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-only

bench-compare:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-only \
		--benchmark-json=$(BENCH_OUT)
	$(PYTHON) benchmarks/compare_bench.py BENCH_baseline.json $(BENCH_OUT) \
		--max-regression 0.20

bench-trend:
	$(PYTHON) benchmarks/compare_bench.py --trend

coverage:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -q \
		--cov=repro --cov-report=term --cov-report=html \
		--cov-fail-under=$(COV_MIN)

verify-incremental:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -q \
		tests/unit/test_incremental_chase.py \
		tests/property/test_incremental_equivalence.py \
		tests/integration/test_chase_equivalence_goldens.py

serve:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro serve --port $(SERVE_PORT)

verify-server:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -q tests/integration/test_server.py
	$(PYTHONPATH_SRC) $(PYTHON) benchmarks/bench_server.py --smoke --seconds 10

lint:
	ruff check src tests benchmarks examples setup.py

analyze:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src

verify: test bench-smoke verify-incremental analyze

install-editable:
	pip install -e . --no-build-isolation

install:
	pip install . --no-build-isolation
