# One-command entry points for the repo's verification workflows.
#
#   make test         - tier-1: full test suite (fails fast)
#   make bench-smoke  - run every benchmark module once, timings disabled
#   make bench        - full timed benchmark run
#   make verify       - test + bench-smoke (what CI should run)

PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench-smoke bench verify install-editable

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-disable

bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-only

verify: test bench-smoke

install-editable:
	pip install -e . --no-build-isolation
