# One-command entry points for the repo's verification workflows.
#
#   make test          - tier-1: full test suite (fails fast)
#   make bench-smoke   - run every benchmark module once, timings disabled
#   make bench         - full timed benchmark run
#   make bench-compare - timed run into BENCH_pr3.json, then fail if any
#                        benchmark regressed >20% vs BENCH_baseline.json
#   make verify-incremental - the incremental≡full abstract-chase
#                        equivalence suite (unit chains + region-sweep
#                        edge cases + Hypothesis property tests)
#   make verify        - test + bench-smoke (what CI should run)

PYTHON ?= python
PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test bench-smoke bench bench-compare verify verify-incremental \
	install-editable install

test:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -x -q

bench-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-disable

bench:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-only

bench-compare:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest benchmarks -q --benchmark-only \
		--benchmark-json=BENCH_pr3.json
	$(PYTHON) benchmarks/compare_bench.py BENCH_baseline.json BENCH_pr3.json \
		--max-regression 0.20

verify-incremental:
	$(PYTHONPATH_SRC) $(PYTHON) -m pytest -q \
		tests/unit/test_incremental_chase.py \
		tests/property/test_incremental_equivalence.py \
		tests/integration/test_chase_equivalence_goldens.py

verify: test bench-smoke verify-incremental

install-editable:
	pip install -e . --no-build-isolation

install:
	pip install . --no-build-isolation
