"""SCALE-2: incremental vs from-scratch cross-region abstract chase.

The abstract chase visits one snapshot per constancy region; adjacent
region snapshots typically differ by a handful of facts.  The
incremental mode (PR 3) replays the previous region's recorded firing
sequence wherever the snapshot diff left it intact and is byte-identical
to the from-scratch schedule, so these benchmarks time the *same*
computation both ways.

Two regimes:

* the org-chart workload (``random_org_history``) is the feature's
  target: region churn comes from short ``Task`` facts, while the heavy
  ``Dept ⋈ Emp`` reporting join is unchanged between almost all adjacent
  regions and replays in the tight zero-allocation loop — incremental
  wins by >2× at the largest sizes;
* the employment workload (``random_employment_history``) churns every
  relation at every breakpoint (job switches remove *and* add facts), so
  most recorded decisions must be re-probed — incremental roughly ties
  from-scratch there, which the regression gate keeps honest.

The summary benchmark prints reuse percentages for the sweep.
"""

import pytest

from repro.abstract_view import abstract_chase, semantics
from repro.workloads import (
    exchange_setting_join,
    exchange_setting_org,
    melting_org_history,
    random_employment_history,
    random_org_history,
)

from conftest import emit

ORG_SETTING = exchange_setting_org()
JOIN_SETTING = exchange_setting_join()


def _org_abstract(people):
    workload = random_org_history(
        people=people, timeline=people * 4, seed=17
    )
    return semantics(workload.instance)


@pytest.mark.parametrize("people", [32, 64, 128])
def test_incremental_org_chase(benchmark, people):
    abstract = _org_abstract(people)
    result = benchmark(
        lambda: abstract_chase(abstract, ORG_SETTING, incremental=True)
    )
    assert result.succeeded


@pytest.mark.parametrize("people", [32, 64, 128])
def test_fullchase_org_chase(benchmark, people):
    abstract = _org_abstract(people)
    result = benchmark(
        lambda: abstract_chase(abstract, ORG_SETTING, incremental=False)
    )
    assert result.succeeded


def test_incremental_employment_chase(benchmark):
    workload = random_employment_history(people=16, timeline=160, seed=17)
    abstract = semantics(workload.instance)
    result = benchmark(
        lambda: abstract_chase(abstract, JOIN_SETTING, incremental=True)
    )
    assert result.succeeded


def test_fullchase_employment_chase(benchmark):
    workload = random_employment_history(people=16, timeline=160, seed=17)
    abstract = semantics(workload.instance)
    result = benchmark(
        lambda: abstract_chase(abstract, JOIN_SETTING, incremental=False)
    )
    assert result.succeeded


@pytest.mark.parametrize("people", [48, 96])
def test_replay_melting_org_chase(benchmark, people):
    """The ≥90%-replay regime: every region boundary is removal-only.

    ``melting_org_history`` never adds a fact after time 0, so every
    region past the first replays the previous region's firing log with
    no live matches — the workload where a fully-replayed region's cost
    is dominated by the *output* floor (target build, trace, null
    renaming) that copy-on-write region results eliminate.
    """
    abstract = semantics(melting_org_history(people).instance)
    result = benchmark(
        lambda: abstract_chase(abstract, ORG_SETTING, incremental=True)
    )
    assert result.succeeded
    totals = result.reuse_totals()
    matches = totals.replayed_matches + totals.live_matches
    assert totals.replayed_matches >= 0.9 * matches


def test_incremental_reuse_summary(benchmark):
    rows = []
    for people in (32, 64, 128):
        abstract = _org_abstract(people)
        result = abstract_chase(abstract, ORG_SETTING, incremental=True)
        assert result.succeeded
        totals = result.reuse_totals()
        matches = totals.replayed_matches + totals.live_matches
        rows.append(
            f"  people={people:>4}  regions={len(result.region_results):>4}  "
            f"matches={matches:>7}  "
            f"replayed={100.0 * totals.replayed_matches / matches:5.1f}%  "
            f"reused streams={totals.streams_reused:>4}  "
            f"patched={totals.streams_patched:>4}"
        )
    emit(
        "SCALE-2: cross-region reuse of the incremental abstract chase",
        "\n".join(rows),
    )
    abstract = _org_abstract(32)
    benchmark(lambda: abstract_chase(abstract, ORG_SETTING, incremental=True))
