"""JOIN-1: cyclic 3-atom bodies — flat pairwise join vs worst-case-optimal.

The flat written-order join of :mod:`repro.relational.homomorphism`
enumerates every binding of a prefix of the body's atoms before probing
the rest: on the triangle body ``R(x,y) ∧ R(y,z) ∧ R(z,x)`` over the
hub-skewed :func:`~repro.workloads.triangle_graph_instance` that is
``Θ(spokes²)`` length-2 paths for ``Θ(spokes)`` result triangles.  A
worst-case-optimal (generic) join binds one *variable* at a time and
intersects the candidate sets of every atom containing it, staying near
the output size.

Both the chase (``Tri(x,y,z)`` exchange, join cost in normalization and
tgd matching) and query answering (triangle query over a copied target)
run through the same plan layer, so one ``--join`` mode switch covers
both; the ``flat`` parametrization pins the reference engine so the gate
tracks the two algorithms separately.
"""

import pytest

from repro.concrete.cchase import c_chase
from repro.query.certain import certain_answers_concrete
from repro.query.query import ConjunctiveQuery
from repro.relational.homomorphism import join_mode
from repro.workloads import (
    exchange_setting_copy,
    exchange_setting_triangle,
    triangle_graph_instance,
)

TRIANGLE_SETTING = exchange_setting_triangle()
COPY_SETTING = exchange_setting_copy()
TRIANGLE_QUERY = ConjunctiveQuery.parse(
    "q(x, y, z) :- T(x, y) & T(y, z) & T(z, x)"
)
SIZES = [64, 192, 576]
MODES = ["flat", "auto"]


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("spokes", SIZES)
def test_triangle_chase(benchmark, spokes, mode):
    source = triangle_graph_instance(spokes)
    with join_mode(mode):
        result = benchmark(lambda: c_chase(source, TRIANGLE_SETTING))
    assert result.succeeded
    # Each closed triangle matches in all three rotations.
    assert len(result.target) == 3 * (spokes // 4)


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("spokes", SIZES)
def test_triangle_query(benchmark, spokes, mode):
    source = triangle_graph_instance(spokes)
    with join_mode(mode):
        answers = benchmark(
            lambda: certain_answers_concrete(
                TRIANGLE_QUERY, source, COPY_SETTING
            )
        )
    assert len(answers) == 3 * (spokes // 4)
