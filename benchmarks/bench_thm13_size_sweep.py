"""THM-13: the O(n²) worst case of normalization, measured.

Theorem 13 bounds the normalized instance by O(n²) facts when every fact
must fragment at every endpoint.  The nested-overlap workload realizes
that worst case; the staircase workload realizes the benign linear
regime.  The sweep prints n vs output size for both, checks the
quadratic/linear shapes, and the benchmark times Algorithm 1 at a fixed
adversarial size.
"""

import pytest

from repro.concrete import naive_normalize, normalize
from repro.workloads import (
    nested_overlap_conjunctions,
    nested_overlap_instance,
    staircase_instance,
)

from conftest import emit


def nested_output_size(n: int) -> int:
    instance = nested_overlap_instance(n)
    return len(normalize(instance, nested_overlap_conjunctions()))


def staircase_output_size(n: int) -> int:
    instance = staircase_instance(n)
    return len(normalize(instance, nested_overlap_conjunctions()))


def test_thm13_quadratic_vs_linear_shapes(benchmark):
    """The sweep: nested grows quadratically, staircase linearly."""
    sizes = [4, 8, 16, 32]
    nested = {n: nested_output_size(n) for n in sizes}
    stairs = {n: staircase_output_size(n) for n in sizes}

    # Nested worst case: fact i fragments at every interior endpoint, so
    # the exact count is sum over facts — quadratic.  Doubling n must
    # roughly quadruple the output (ratio > 3 suffices for the shape).
    assert nested[8] / nested[4] > 3
    assert nested[16] / nested[8] > 3
    assert nested[32] / nested[16] > 3
    # Staircase: doubling n roughly doubles the output (ratio < 3).
    assert stairs[8] / stairs[4] < 3
    assert stairs[16] / stairs[8] < 3
    assert stairs[32] / stairs[16] < 3
    # And the quadratic bound of Theorem 13 holds everywhere.
    for n in sizes:
        assert nested[n] <= n * (2 * n - 1)

    rows = "\n".join(
        f"  n={n:>3}   nested → {nested[n]:>5} facts   "
        f"staircase → {stairs[n]:>4} facts   bound n(2n-1) = {n * (2 * n - 1)}"
        for n in sizes
    )
    emit("THM-13: normalized-size sweep (worst case vs benign)", rows)

    benchmark(lambda: nested_output_size(16))


@pytest.mark.parametrize("n", [8, 16])
def test_thm13_naive_vs_algorithm1_size(benchmark, n):
    """On the worst case both algorithms fragment everything — the naïve
    one is no smaller, confirming Algorithm 1 is never worse in size."""
    instance = nested_overlap_instance(n)
    conjunctions = nested_overlap_conjunctions()

    smart = normalize(instance, conjunctions)
    naive = naive_normalize(instance)
    assert len(smart) <= len(naive)

    benchmark(lambda: naive_normalize(instance))
