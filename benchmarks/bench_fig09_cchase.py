"""FIG-9: the c-chase of Ic (Example 17), regenerated and timed.

The exact five rows of Figure 9, with both unknowns carrying the right
interval annotations; the benchmark times the full Definition 16 pipeline
(normalize → s-t steps → normalize → egd steps).  The ``scaled`` variant
runs the same pipeline on dense salary histories
(:func:`repro.workloads.overlapping_salary_history`), where both
normalization stages carry most of the cost.
"""

import pytest

from repro.concrete import c_chase
from repro.relational import Constant
from repro.relational.terms import AnnotatedNull
from repro.serialize import render_concrete_instance
from repro.temporal import Interval
from repro.workloads import employment_setting, overlapping_salary_history

from conftest import emit

SCALED_SPANS = (32, 256, 1024, 2048)


def test_fig09_cchase(benchmark, source, setting):
    result = benchmark(lambda: c_chase(source, setting))
    assert result.succeeded
    target = result.target
    assert len(target) == 5

    rows = {
        (str(f.data[0]), str(f.data[1]), str(f.interval)): f.data[2]
        for f in target.facts_of("Emp")
    }
    # The three known-salary rows.
    assert rows[("Ada", "IBM", "[2013, 2014)")] == Constant("18k")
    assert rows[("Ada", "Google", "[2014, inf)")] == Constant("18k")
    assert rows[("Bob", "IBM", "[2015, 2018)")] == Constant("13k")
    # The two interval-annotated unknowns.
    ada_unknown = rows[("Ada", "IBM", "[2012, 2013)")]
    bob_unknown = rows[("Bob", "IBM", "[2013, 2015)")]
    assert isinstance(ada_unknown, AnnotatedNull)
    assert ada_unknown.annotation == Interval(2012, 2013)
    assert isinstance(bob_unknown, AnnotatedNull)
    assert bob_unknown.annotation == Interval(2013, 2015)
    assert ada_unknown.base != bob_unknown.base

    emit(
        "FIG-9 (paper Figure 9): c-chase(Ic, M+) — the concrete solution",
        render_concrete_instance(target, setting.lifted_target_schema()),
    )


@pytest.mark.parametrize("spans", SCALED_SPANS)
def test_fig09_cchase_scaled(benchmark, spans):
    """The full c-chase pipeline on dense salary histories.

    The largest size concentrates the whole history on one person — the
    per-person value-equivalence group is the entire instance, which is
    the regime where overlap discovery used to dominate the pipeline.
    """
    scaled_setting = employment_setting()
    people = 1 if spans >= 1024 else 2
    workload = overlapping_salary_history(people=people, spans=spans)
    result = benchmark(lambda: c_chase(workload.instance, scaled_setting))
    assert result.succeeded
    # One Emp row per normalized E fragment survives, so the solution
    # stays linear in the source despite the dense overlap groups.
    assert len(result.target) <= 6 * len(workload.instance)


@pytest.mark.parametrize("spans", (128, 512))
def test_fig09_cchase_incremental(benchmark, spans):
    """The c-chase with fragment-level normalization replay.

    A prior run on the unchurned history records its replay state; the
    timed run chases a history where only person 0's jobs changed, so
    every other person's source-side value-equivalence group replays its
    recorded sweep.  Byte-identical to the from-scratch chase.
    """
    scaled_setting = employment_setting()
    base = overlapping_salary_history(people=8, spans=spans)
    first = c_chase(base.instance, scaled_setting, incremental=True)
    assert first.succeeded
    churned = overlapping_salary_history(people=8, spans=spans, churn=spans // 4)
    result = benchmark(
        lambda: c_chase(churned.instance, scaled_setting, incremental=first)
    )
    assert result.succeeded
    source_report, _target_report = result.normalization_reports
    assert source_report.groups_replayed == 7
    assert result.target == c_chase(churned.instance, scaled_setting).target
