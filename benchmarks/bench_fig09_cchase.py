"""FIG-9: the c-chase of Ic (Example 17), regenerated and timed.

The exact five rows of Figure 9, with both unknowns carrying the right
interval annotations; the benchmark times the full Definition 16 pipeline
(normalize → s-t steps → normalize → egd steps).
"""

from repro.concrete import c_chase
from repro.relational import Constant
from repro.relational.terms import AnnotatedNull
from repro.serialize import render_concrete_instance
from repro.temporal import Interval

from conftest import emit


def test_fig09_cchase(benchmark, source, setting):
    result = benchmark(lambda: c_chase(source, setting))
    assert result.succeeded
    target = result.target
    assert len(target) == 5

    rows = {
        (str(f.data[0]), str(f.data[1]), str(f.interval)): f.data[2]
        for f in target.facts_of("Emp")
    }
    # The three known-salary rows.
    assert rows[("Ada", "IBM", "[2013, 2014)")] == Constant("18k")
    assert rows[("Ada", "Google", "[2014, inf)")] == Constant("18k")
    assert rows[("Bob", "IBM", "[2015, 2018)")] == Constant("13k")
    # The two interval-annotated unknowns.
    ada_unknown = rows[("Ada", "IBM", "[2012, 2013)")]
    bob_unknown = rows[("Bob", "IBM", "[2013, 2015)")]
    assert isinstance(ada_unknown, AnnotatedNull)
    assert ada_unknown.annotation == Interval(2012, 2013)
    assert isinstance(bob_unknown, AnnotatedNull)
    assert bob_unknown.annotation == Interval(2013, 2015)
    assert ada_unknown.base != bob_unknown.base

    emit(
        "FIG-9 (paper Figure 9): c-chase(Ic, M+) — the concrete solution",
        render_concrete_instance(target, setting.lifted_target_schema()),
    )
