"""FIG-3: the abstract chase of the employment database (Example 5).

Regenerates Figure 3 snapshot by snapshot — Ada's unknown 2012 salary,
Bob's per-year unknowns in 2013/2014, the fully-known 2015 state — and
times the snapshot-wise chase (Proposition 4).
"""

from repro.abstract_view import abstract_chase
from repro.relational import Constant, Instance, LabeledNull, fact
from repro.serialize import render_abstract_snapshots

from conftest import emit


def test_fig03_abstract_chase(benchmark, abstract_source, setting):
    result = benchmark(lambda: abstract_chase(abstract_source, setting))
    assert result.succeeded
    target = result.target

    # 2012: Emp(Ada, IBM, N) — salary unknown.
    (ada_2012,) = target.snapshot(2012).facts_of("Emp")
    assert ada_2012.args[:2] == (Constant("Ada"), Constant("IBM"))
    assert isinstance(ada_2012.args[2], LabeledNull)

    # 2013: Ada known (18k), Bob unknown.
    snap_2013 = target.snapshot(2013)
    assert fact("Emp", "Ada", "IBM", "18k") in snap_2013
    (bob_2013,) = [
        f for f in snap_2013.facts_of("Emp") if f.args[0] == Constant("Bob")
    ]
    assert isinstance(bob_2013.args[2], LabeledNull)

    # 2014: Bob's unknown is a FRESH null (differs from 2013's).
    (bob_2014,) = [
        f
        for f in target.snapshot(2014).facts_of("Emp")
        if f.args[0] == Constant("Bob")
    ]
    assert bob_2014.args[2] != bob_2013.args[2]

    # 2015-2017: everything known.
    assert target.snapshot(2015) == Instance(
        [fact("Emp", "Ada", "Google", "18k"), fact("Emp", "Bob", "IBM", "13k")]
    )

    # 2018 on: only Ada.
    assert target.snapshot(2018) == Instance(
        [fact("Emp", "Ada", "Google", "18k")]
    )

    emit(
        "FIG-3 (paper Figure 3): chase(⟦Ic⟧, M) snapshots",
        render_abstract_snapshots(target, range(2012, 2019)),
    )
