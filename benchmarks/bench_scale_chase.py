"""SCALE-1: chase scaling on generated employment histories.

The paper's motivation for the concrete view is that abstract snapshots
repeat data; this benchmark quantifies it.  The c-chase works on the
compact interval representation, while the abstract chase must visit one
region per breakpoint — the sweep prints facts/regions/chase sizes and
the benchmarks time both at a fixed size.
"""

import pytest

from repro.abstract_view import abstract_chase, semantics
from repro.concrete import c_chase
from repro.workloads import exchange_setting_join, random_employment_history

from conftest import emit

SETTING = exchange_setting_join()


@pytest.mark.parametrize("people", [2, 4, 8])
def test_scale_cchase(benchmark, people):
    workload = random_employment_history(people=people, timeline=40, seed=17)
    result = benchmark(lambda: c_chase(workload.instance, SETTING))
    assert result.succeeded


@pytest.mark.parametrize("people", [2, 4, 8])
def test_scale_abstract_chase(benchmark, people):
    workload = random_employment_history(people=people, timeline=40, seed=17)
    abstract = semantics(workload.instance)
    result = benchmark(lambda: abstract_chase(abstract, SETTING))
    assert result.succeeded


def test_scale_summary_table(benchmark):
    rows = []
    for people in (2, 4, 8, 16):
        workload = random_employment_history(
            people=people, timeline=40, seed=17
        )
        abstract = semantics(workload.instance)
        concrete_result = c_chase(workload.instance, SETTING)
        abstract_result = abstract_chase(abstract, SETTING)
        assert concrete_result.succeeded and abstract_result.succeeded
        rows.append(
            f"  people={people:>3}  source facts={len(workload.instance):>4}  "
            f"regions={len(abstract.regions()):>3}  "
            f"c-chase facts={len(concrete_result.target):>4}  "
            f"abstract templates={len(abstract_result.target):>4}"
        )
    emit("SCALE-1: exchange size sweep (concrete vs abstract)", "\n".join(rows))
    workload = random_employment_history(people=4, timeline=40, seed=17)
    benchmark(lambda: c_chase(workload.instance, SETTING))
