"""FIG-2: Example 2's homomorphism (a)symmetry between J1 and J2.

Regenerates the two instances of Figure 2 and re-proves, by search, that
J2 ↦ J1 exists while J1 ↦ J2 does not; the benchmark times the decision
procedure for abstract homomorphisms (condition 2 included).
"""

from repro.abstract_view import (
    AbstractInstance,
    TemplateFact,
    has_abstract_homomorphism,
)
from repro.relational import Constant, LabeledNull
from repro.relational.terms import AnnotatedNull
from repro.temporal import Interval

from conftest import emit


def j1() -> AbstractInstance:
    return AbstractInstance(
        [
            TemplateFact(
                "Emp",
                (Constant("Ada"), Constant("IBM"), LabeledNull("N")),
                Interval(0, 2),
            )
        ]
    )


def j2() -> AbstractInstance:
    return AbstractInstance(
        [
            TemplateFact(
                "Emp",
                (
                    Constant("Ada"),
                    Constant("IBM"),
                    AnnotatedNull("M", Interval(0, 2)),
                ),
                Interval(0, 2),
            )
        ]
    )


def test_fig02_homomorphism_asymmetry(benchmark):
    """Decide both directions of Example 2, repeatedly."""
    one, two = j1(), j2()

    def decide():
        return (
            has_abstract_homomorphism(two, one),
            has_abstract_homomorphism(one, two),
        )

    forward, backward = benchmark(decide)
    assert forward is True  # J2 ↦ J1 exists
    assert backward is False  # J1 ↦ J2 does not (condition 2)
    emit(
        "FIG-2 (paper Figure 2 / Example 2): instances with nulls",
        "J1: db0 = db1 = {Emp(Ada, IBM, N)}            (same null twice)\n"
        "J2: db0 = {Emp(Ada, IBM, M@0)}, db1 = {Emp(Ada, IBM, M@1)}\n"
        f"hom J2 -> J1: {forward}   |   hom J1 -> J2: {backward}",
    )
