"""ABL-2: Algorithm 1 vs naïve normalization across overlap densities.

The paper (end of Section 4.2) describes the trade-off: the naïve
algorithm is O(n log n) but over-fragments; Algorithm 1 pays homomorphism
enumeration to fragment only what the mapping can actually see.  The
sweep varies how much of the instance the conjunctions touch and prints
fragment counts for both; benchmarks time both algorithms on a mixed
workload.
"""

from repro.concrete import ConcreteInstance, concrete_fact, naive_normalize, normalize
from repro.relational import TemporalConjunction, parse_conjunction
from repro.temporal import Interval

from conftest import emit

PAIR_RS = TemporalConjunction.from_conjunction(parse_conjunction("R(x) & S(y)"))


def mixed_instance(matched: int, bystanders: int) -> ConcreteInstance:
    """*matched* overlapping R/S pairs plus *bystanders* overlapping Z
    facts the conjunction cannot see."""
    instance = ConcreteInstance()
    for index in range(matched):
        base = index * 10
        instance.add(
            concrete_fact("R", f"m{index}", interval=Interval(base, base + 6))
        )
        instance.add(
            concrete_fact("S", f"m{index}", interval=Interval(base + 3, base + 9))
        )
    for index in range(bystanders):
        base = index * 7
        instance.add(
            concrete_fact("Z", f"b{index}", interval=Interval(base, base + 15))
        )
    return instance


def test_ablation_fragment_counts(benchmark):
    rows = []
    for matched, bystanders in [(2, 20), (5, 15), (10, 10), (15, 5)]:
        instance = mixed_instance(matched, bystanders)
        smart = normalize(instance, [PAIR_RS])
        naive = naive_normalize(instance)
        assert len(smart) <= len(naive)
        rows.append(
            f"  matched={matched:>3} bystanders={bystanders:>3}  "
            f"input={len(instance):>3}  algorithm1={len(smart):>4}  "
            f"naive={len(naive):>4}  excess={len(naive) - len(smart):>4}"
        )
    emit(
        "ABL-2: fragment counts — Algorithm 1 vs naïve "
        "(bystanders are facts the mapping cannot see)",
        "\n".join(rows),
    )
    instance = mixed_instance(5, 15)
    benchmark(lambda: normalize(instance, [PAIR_RS]))


def test_ablation_naive_timing(benchmark):
    instance = mixed_instance(5, 15)
    benchmark(lambda: naive_normalize(instance))


def test_ablation_naive_faster_but_larger(benchmark):
    # The shape claim the paper makes: naïve is cheaper to compute but
    # produces at least as many facts.
    instance = mixed_instance(8, 40)
    smart = normalize(instance, [PAIR_RS])
    naive = naive_normalize(instance)
    assert len(naive) >= len(smart)
    assert len(naive) > len(instance)  # it really does over-fragment here
    benchmark(lambda: (normalize(instance, [PAIR_RS]), naive_normalize(instance)))
