"""FIG-10: the commuting square ⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧).

Runs both chases and the two homomorphism searches of Corollary 20; the
benchmark times the *whole* verification, which is the paper's central
correctness claim made executable.
"""

from repro.correspondence import verify_correspondence
from repro.workloads import medical_scenario, scheduling_scenario

from conftest import emit


def test_fig10_square_running_example(benchmark, source, setting):
    report = benchmark(lambda: verify_correspondence(source, setting))
    assert report.holds and report.equivalent
    emit(
        "FIG-10 (paper Figure 10): correspondence between the two chases",
        "Ic ──⟦·⟧──▶ ⟦Ic⟧\n"
        " │            │\n"
        " c-chase      chase      (both successful)\n"
        " │            │\n"
        " ▼            ▼\n"
        "Jc ──⟦·⟧──▶ ⟦Jc⟧ ∼ Ja   homomorphically equivalent: "
        f"{report.equivalent}",
    )


def test_fig10_square_medical(benchmark):
    scenario = medical_scenario()
    report = benchmark(
        lambda: verify_correspondence(scenario.source, scenario.setting)
    )
    assert report.holds


def test_fig10_square_scheduling(benchmark):
    scenario = scheduling_scenario()
    report = benchmark(
        lambda: verify_correspondence(scenario.source, scenario.setting)
    )
    assert report.holds
