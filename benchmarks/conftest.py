"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_figXX_*`` module regenerates one figure of the paper:
it first asserts the regenerated artifact equals the paper's rows
*exactly*, then times the operation that produces it.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated figures printed next to the timings.
"""

from __future__ import annotations

import pytest

from repro.workloads import (
    employment_setting,
    employment_source_abstract,
    employment_source_concrete,
)


@pytest.fixture(scope="session")
def setting():
    return employment_setting()


@pytest.fixture
def source():
    return employment_source_concrete()


@pytest.fixture
def abstract_source():
    return employment_source_abstract()


def emit(title: str, body: str) -> None:
    """Print a regenerated artifact in a recognizable block."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
