"""SCALE-2: egd-heavy chases — the batched union-find resolution path.

The egd fixpoint used to re-enumerate every homomorphism after every
single equation; it now merges whole rounds of equations in a union-find
and applies one substitution pass per round.  This workload makes the
egd phase the dominant cost: every person has one salary fact per
period plus an unknown-salary copy, so the key egd must resolve one
merge per (person, period) fragment.
"""

import pytest

from repro.concrete import c_chase
from repro.chase import chase_snapshot
from repro.workloads import exchange_setting_join, random_employment_history

from conftest import emit

SETTING = exchange_setting_join()


@pytest.mark.parametrize("people", [4, 8, 16])
def test_scale_egd_cchase(benchmark, people):
    workload = random_employment_history(people=people, timeline=60, seed=23)
    result = benchmark(lambda: c_chase(workload.instance, SETTING))
    assert result.succeeded
    # Every chase resolves at least one unknown through the egd.
    assert len(result.trace.egd_steps) >= people


def test_scale_egd_snapshot_chase(benchmark):
    workload = random_employment_history(people=16, timeline=60, seed=23)
    snapshot = workload.instance.snapshot(20)

    def run():
        return chase_snapshot(snapshot, SETTING)

    result = benchmark(run)
    assert result.succeeded


def test_egd_step_accounting(benchmark):
    workload = random_employment_history(people=8, timeline=60, seed=23)
    result = c_chase(workload.instance, SETTING)
    assert result.succeeded
    merged = {str(step.replaced) for step in result.trace.egd_steps}
    assert len(merged) == len(result.trace.egd_steps)  # each null merged once
    emit(
        "SCALE-2: egd resolution accounting (people=8)",
        f"  tgd steps={len(result.trace.tgd_steps)}  "
        f"egd steps={len(result.trace.egd_steps)}  "
        f"target facts={len(result.target)}",
    )
    benchmark(lambda: c_chase(workload.instance, SETTING))
