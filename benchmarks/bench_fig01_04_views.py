"""FIG-1 and FIG-4: the two views of the employment database.

Regenerates Figure 4 (the concrete instance) and Figure 1 (its abstract
snapshots), asserts exact agreement with the paper, and times snapshot
materialization — the ⟦·⟧ operation everything else builds on.
"""

from repro.abstract_view import semantics
from repro.relational import Instance, fact
from repro.serialize import render_abstract_snapshots, render_concrete_instance
from repro.temporal import Interval, interval
from repro.concrete import concrete_fact
from repro.workloads import employment_source_concrete

from conftest import emit

FIGURE_1_EXPECTED = {
    2012: Instance([fact("E", "Ada", "IBM")]),
    2013: Instance(
        [fact("E", "Ada", "IBM"), fact("S", "Ada", "18k"), fact("E", "Bob", "IBM")]
    ),
    2014: Instance(
        [fact("E", "Ada", "Google"), fact("S", "Ada", "18k"), fact("E", "Bob", "IBM")]
    ),
    2015: Instance(
        [
            fact("E", "Ada", "Google"),
            fact("S", "Ada", "18k"),
            fact("E", "Bob", "IBM"),
            fact("S", "Bob", "13k"),
        ]
    ),
    2018: Instance(
        [fact("E", "Ada", "Google"), fact("S", "Ada", "18k"), fact("S", "Bob", "13k")]
    ),
}

FIGURE_4_EXPECTED = {
    concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2014)),
    concrete_fact("E", "Ada", "Google", interval=interval(2014)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2018)),
    concrete_fact("S", "Ada", "18k", interval=interval(2013)),
    concrete_fact("S", "Bob", "13k", interval=interval(2015)),
}


def test_fig04_concrete_source(benchmark, setting):
    """Figure 4: build and validate the concrete source instance."""

    def build():
        instance = employment_source_concrete()
        assert instance.is_coalesced()
        return instance

    instance = benchmark(build)
    assert instance.facts() == FIGURE_4_EXPECTED
    emit(
        "FIG-4 (paper Figure 4): concrete source instance Ic",
        render_concrete_instance(instance, setting.lifted_source_schema()),
    )


def test_fig01_abstract_snapshots(benchmark, source):
    """Figure 1: materialize the abstract snapshots of ⟦Ic⟧."""
    abstract = semantics(source)

    def materialize():
        return {year: abstract.snapshot(year) for year in range(2012, 2020)}

    snapshots = benchmark(materialize)
    for year, expected in FIGURE_1_EXPECTED.items():
        assert snapshots[year] == expected
    emit(
        "FIG-1 (paper Figure 1): abstract snapshots of ⟦Ic⟧",
        render_abstract_snapshots(abstract, range(2012, 2019)),
    )
