"""THM-21 / COR-22: naive evaluation and certain answers, timed.

Asserts Theorem 21 (⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓) and Corollary 22 (certain
answers agree across views) on the running example and a generated
history, and times both evaluation routes.
"""

import pytest

from repro.abstract_view import semantics
from repro.concrete import c_chase
from repro.query import (
    ConjunctiveQuery,
    QueryLog,
    UnionQuery,
    certain_answers_abstract,
    certain_answers_concrete,
    naive_evaluate_abstract,
    naive_evaluate_concrete,
)
from repro.workloads import exchange_setting_join, random_employment_history

from conftest import emit

QUERY = ConjunctiveQuery.parse("q(n, s) :- Emp(n, c, s)")
UNION = UnionQuery.of(
    "q(n) :- Emp(n, 'IBM', s)",
    "q(n) :- Emp(n, 'Google', s)",
)
JOIN_QUERY = ConjunctiveQuery.parse("q(n, m) :- Emp(n, c, s) & Emp(m, c, s)")

# Scaled variants: chased targets large enough that evaluation cost —
# not fixture noise — is what the timer sees.  The chase runs once per
# size (module cache); only evaluation is inside the timed lambda.
SCALED_SIZES = (24, 96, 192)
_SCALED_CACHE: dict = {}


def _scaled_workload(people):
    cached = _SCALED_CACHE.get(people)
    if cached is None:
        setting = exchange_setting_join()
        history = random_employment_history(people=people, timeline=120, seed=9)
        solution = c_chase(history.instance, setting).unwrap()
        cached = _SCALED_CACHE[people] = (solution, semantics(solution))
    return cached


def test_thm21_concrete_route(benchmark, source, setting):
    solution = c_chase(source, setting).unwrap()
    answers = benchmark(
        lambda: naive_evaluate_concrete(QUERY, solution).to_temporal()
    )
    assert answers == naive_evaluate_abstract(QUERY, semantics(solution))
    rows = "\n".join(
        f"  ({', '.join(map(str, item))})  @ {support}" for item, support in answers
    )
    emit("THM-21: q+(Jc)↓ — certain salary history", rows)


def test_thm21_abstract_route(benchmark, source, setting):
    solution = semantics(c_chase(source, setting).unwrap())
    answers = benchmark(lambda: naive_evaluate_abstract(QUERY, solution))
    assert len(answers) == 2  # (Ada, 18k) and (Bob, 13k)


def test_cor22_certain_answers_agree(benchmark, source, setting):
    def both_routes():
        concrete = certain_answers_concrete(QUERY, source, setting)
        abstract = certain_answers_abstract(QUERY, semantics(source), setting)
        return concrete, abstract

    concrete, abstract = benchmark(both_routes)
    assert concrete == abstract


def test_cor22_union_query_on_generated_history(benchmark):
    setting = exchange_setting_join()
    workload = random_employment_history(people=4, timeline=20, seed=9)
    solution = c_chase(workload.instance, setting).unwrap()

    answers = benchmark(
        lambda: naive_evaluate_concrete(UNION, solution).to_temporal()
    )
    assert answers == naive_evaluate_abstract(UNION, semantics(solution))


@pytest.mark.parametrize("people", SCALED_SIZES)
def test_thm21_scaled_abstract_route(benchmark, people):
    solution, abstract = _scaled_workload(people)
    answers = benchmark(lambda: naive_evaluate_abstract(QUERY, abstract))
    # Theorem 21 at scale: the region-wise answers match the four-step route.
    assert answers == naive_evaluate_concrete(QUERY, solution).to_temporal()


@pytest.mark.parametrize("people", SCALED_SIZES)
def test_thm21_scaled_concrete_route(benchmark, people):
    solution, _ = _scaled_workload(people)
    answers = benchmark(
        lambda: naive_evaluate_concrete(QUERY, solution).to_temporal()
    )
    assert len(answers) > people  # every person has some certain history


@pytest.mark.parametrize("people", SCALED_SIZES)
def test_thm21_scaled_join_query(benchmark, people):
    solution, abstract = _scaled_workload(people)
    answers = benchmark(
        lambda: naive_evaluate_concrete(JOIN_QUERY, solution).to_temporal()
    )
    assert answers == naive_evaluate_abstract(JOIN_QUERY, abstract)


def test_query_log_replayed_join(benchmark):
    # The incremental path: a warm QueryLog turns re-asking the join
    # query on an unchanged solution into a signature check + lookup.
    # (New benchmark — informational, exempt from the baseline gate.)
    solution, _ = _scaled_workload(192)
    log = QueryLog()
    cold = naive_evaluate_concrete(JOIN_QUERY, solution, log=log)
    answers = benchmark(
        lambda: naive_evaluate_concrete(JOIN_QUERY, solution, log=log)
    )
    assert answers.rows == cold.rows
    assert log.hits > 0 and log.misses == 1
