"""EVENTS-1: event-log ingestion and the follow-delta pipeline.

The ingestion layer adds two units of work in front of the chase —
parsing/resolving event records and compiling the resolved set into a
coalesced source instance — and this module prices both, plus the live
path they feed:

* **ingest + compile** is the cost of accepting one batch: parse,
  resolve corrections, trial-compile the merged log (the compile
  dominates; resolution is a dict merge);
* a **warm /events cycle** is the full server round trip — ingest the
  batch, diff against the cursor's last snapshot, incrementally chase
  the delta — the live-feed unit of work this PR introduces;
* the matching **raw /delta cycle** is the same source change delivered
  pre-compiled, isolating what the event layer costs over handing the
  server finished facts.

Also a script: ``python benchmarks/bench_events.py --smoke`` boots a
daemon, streams an org event log through ``/events`` in late-arrival
batches, checks the served target equals a cold chase of the compiled
log, and prints events/sec (appended to ``$GITHUB_STEP_SUMMARY`` when
set) for the CI examples-smoke job.
"""

import json
import os
import sys
import time

import pytest

from repro import EventLog, c_chase
from repro.serialize import concrete_instance_to_json, setting_to_json
from repro.server import ServerClient, ServerThread
from repro.workloads import (
    exchange_setting_org,
    late_arrival_batches,
    org_event_mapping,
    org_event_stream,
)

ORG_SETTING_JSON = setting_to_json(exchange_setting_org())
MAPPING = org_event_mapping()
STREAM = org_event_stream(people=24, timeline=48, seed=31)


def test_events_ingest_compile(benchmark):
    """Ingest the whole stream into a fresh log (parse + resolve + compile)."""

    def ingest():
        log = EventLog(MAPPING)
        return log.ingest(STREAM)

    report = benchmark(ingest)
    assert report.accepted > len(STREAM) // 2
    assert report.pending == 0


def test_events_snapshot_replay(benchmark):
    """Replaying a cold snapshot at an interior time point (no cache)."""
    log = EventLog(MAPPING)
    log.ingest(STREAM)

    def snapshot():
        log._compiled.pop(24, None)  # defeat the per-horizon cache
        return log.snapshot_at(24)

    instance = benchmark(snapshot)
    assert len(list(instance.facts())) > 0


@pytest.fixture(scope="module")
def server():
    with ServerThread() as thread:
        yield thread


def _churn_events(index: int) -> list[dict]:
    """A create/delete pair on a throwaway entity, unique per cycle."""
    scale = MAPPING.scale
    return [
        {
            "id": f"bench-add-{index}",
            "entity_id": f"tmp{index}",
            "event_type": "created",
            "timestamp": scale.timestamp(50),
            "payload": {"type": "employee", "dept": "d0"},
        },
        {
            "id": f"bench-del-{index}",
            "entity_id": f"tmp{index}",
            "event_type": "deleted",
            "timestamp": scale.timestamp(55),
            "payload": {},
        },
    ]


def test_server_events_cycle(benchmark, server):
    """One warm ``/events`` batch: ingest, cursor diff, incremental chase."""
    with ServerClient(port=server.port) as client:
        client.create("events-bench", ORG_SETTING_JSON, {"facts": []})
        client.events("events-bench", STREAM, mapping=MAPPING.to_json())
        counter = iter(range(1_000_000))

        def cycle():
            return client.events("events-bench", _churn_events(next(counter)))

        result = benchmark(cycle)
        assert result["chased"]
        client.evict("events-bench")


def test_server_raw_delta_cycle(benchmark, server):
    """The same source change delivered as a pre-compiled ``/delta``."""
    log = EventLog(MAPPING)
    log.ingest(STREAM)
    source = concrete_instance_to_json(log.snapshot_at(None))
    with ServerClient(port=server.port) as client:
        client.create("delta-bench", ORG_SETTING_JSON, source)
        # The fact one churn create/delete pair compiles to, pre-built.
        fact = {
            "relation": "Emp",
            "data": [
                {"kind": "const", "value": "tmpX"},
                {"kind": "const", "value": "d0"},
            ],
            "interval": "[50, 55)",
        }

        def cycle():
            client.delta("delta-bench", add=[fact])
            return client.delta("delta-bench", remove=[fact])

        result = benchmark(cycle)
        assert "diff" in result
        client.evict("delta-bench")


# ---------------------------------------------------------------------------
# --smoke: the CI examples-smoke job's live-ingestion probe
# ---------------------------------------------------------------------------


def _smoke() -> int:
    events = org_event_stream(people=16, timeline=48, seed=42)
    batches = late_arrival_batches(events, batches=4, late_fraction=0.25, seed=7)
    with ServerThread() as thread, ServerClient(port=thread.port) as client:
        client.create("smoke", ORG_SETTING_JSON, {"facts": []})
        started = time.perf_counter()
        total = 0
        for number, batch in enumerate(batches):
            result = client.events(
                "smoke", batch, mapping=MAPPING.to_json() if number == 0 else None
            )
            total += result["ingest"]["accepted"] + result["ingest"]["corrections"]
        elapsed = time.perf_counter() - started

        log = EventLog(MAPPING)
        log.ingest(events)
        cold = c_chase(log.snapshot_at(None), exchange_setting_org())
        served = client.target("smoke")
        identical = json.dumps(served, sort_keys=True) == json.dumps(
            concrete_instance_to_json(cold.target), sort_keys=True
        )

        lines = [
            "### repro events smoke",
            "",
            f"- streamed **{total}** events in {len(batches)} late-arrival "
            f"batches over HTTP in {elapsed:.2f}s "
            f"(**{total / elapsed:.1f} events/sec**)",
            f"- served target ≡ cold chase of the compiled log: **{identical}**",
        ]
        report = "\n".join(lines)
        print(report)
        summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary:
            with open(summary, "a") as handle:
                handle.write(report + "\n")
        return 0 if identical else 1


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(_smoke())
    print("usage: python benchmarks/bench_events.py --smoke")
    sys.exit(2)
