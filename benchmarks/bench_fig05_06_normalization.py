"""FIG-5 and FIG-6: conjunction-aware vs naïve normalization of Ic.

Regenerates both figures exactly (9 facts vs 14 facts) and times the two
algorithms — the paper's size-vs-speed trade-off (end of Section 4.2)
made measurable.  The ``scaled`` variants run the same two algorithms on
:func:`repro.workloads.overlapping_salary_history` — dense per-person
``E ⋈ S`` overlap groups with linear fragment output, the shape where
overlap discovery (not fragmentation) dominates — at growing sizes.
"""

import pytest

from repro.concrete import (
    concrete_fact,
    is_normalized,
    naive_normalize,
    normalize,
    normalize_with_report,
)
from repro.serialize import render_concrete_instance
from repro.temporal import Interval, interval
from repro.workloads import overlapping_salary_history, salary_conjunction

from conftest import emit

SCALED_SPANS = (64, 256, 512)

FIGURE_5 = {
    concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2013)),
    concrete_fact("E", "Ada", "IBM", interval=Interval(2013, 2014)),
    concrete_fact("E", "Ada", "Google", interval=interval(2014)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2015)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2015, 2018)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2013, 2014)),
    concrete_fact("S", "Ada", "18k", interval=interval(2014)),
    concrete_fact("S", "Bob", "13k", interval=Interval(2015, 2018)),
    concrete_fact("S", "Bob", "13k", interval=interval(2018)),
}

FIGURE_6 = {
    concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2013)),
    concrete_fact("E", "Ada", "IBM", interval=Interval(2013, 2014)),
    concrete_fact("E", "Ada", "Google", interval=Interval(2014, 2015)),
    concrete_fact("E", "Ada", "Google", interval=Interval(2015, 2018)),
    concrete_fact("E", "Ada", "Google", interval=interval(2018)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2014)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2014, 2015)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2015, 2018)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2013, 2014)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2014, 2015)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2015, 2018)),
    concrete_fact("S", "Ada", "18k", interval=interval(2018)),
    concrete_fact("S", "Bob", "13k", interval=Interval(2015, 2018)),
    concrete_fact("S", "Bob", "13k", interval=interval(2018)),
}


def test_fig05_algorithm1(benchmark, source, setting):
    """Figure 5: norm(Ic, {E+(n,c,t) ∧ S+(n,s,t)}) — 9 facts."""
    conjunctions = [salary_conjunction()]
    normalized = benchmark(lambda: normalize(source, conjunctions))
    assert normalized.facts() == FIGURE_5
    emit(
        "FIG-5 (paper Figure 5): Algorithm 1 normalization (9 facts)",
        render_concrete_instance(normalized, setting.lifted_source_schema()),
    )


def test_fig06_naive_normalization(benchmark, source, setting):
    """Figure 6: the naïve endpoint-based normalization — 14 facts."""
    normalized = benchmark(lambda: naive_normalize(source))
    assert normalized.facts() == FIGURE_6
    assert len(normalized) > len(FIGURE_5)  # the paper's comparison
    emit(
        "FIG-6 (paper Figure 6): naïve normalization (14 facts)",
        render_concrete_instance(normalized, setting.lifted_source_schema()),
    )


@pytest.mark.parametrize("spans", SCALED_SPANS)
def test_fig05_scaled_algorithm1(benchmark, spans):
    """Figure 5's algorithm on dense salary histories (big overlap groups)."""
    workload = overlapping_salary_history(people=2, spans=spans)
    conjunctions = [salary_conjunction()]
    normalized = benchmark(lambda: normalize(workload.instance, conjunctions))
    # The workload's fragment fan-out is bounded: linear output, so the
    # timing isolates overlap discovery rather than fragment churn.
    assert len(workload.instance) < len(normalized) <= 6 * len(workload.instance)
    if spans == SCALED_SPANS[0]:
        assert is_normalized(normalized, conjunctions)


@pytest.mark.parametrize("spans", SCALED_SPANS)
def test_fig06_scaled_naive(benchmark, spans):
    """Figure 6's naïve algorithm on the same dense salary histories."""
    workload = overlapping_salary_history(people=2, spans=spans)
    normalized = benchmark(lambda: naive_normalize(workload.instance))
    assert len(normalized) >= len(workload.instance)


@pytest.mark.parametrize("spans", (128, 256))
def test_fig05_scaled_replay(benchmark, spans):
    """Fragment-level incremental normalization on a churned history.

    A first run records its :class:`NormalizationLog`; the timed run
    normalizes a history where only person 0's jobs changed, so 7 of the
    8 per-person groups (and their components' fragment plans) replay
    with zero re-sorting.  Output is byte-identical to from-scratch.
    """
    conjunctions = [salary_conjunction()]
    base = overlapping_salary_history(people=8, spans=spans)
    _, recorded = normalize_with_report(
        base.instance, conjunctions, record=True
    )
    churned = overlapping_salary_history(people=8, spans=spans, churn=spans // 4)
    normalized, report = benchmark(
        lambda: normalize_with_report(
            churned.instance, conjunctions, previous=recorded.log
        )
    )
    assert report.groups_replayed == 7
    assert normalized == normalize(churned.instance, conjunctions)
