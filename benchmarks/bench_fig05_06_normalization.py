"""FIG-5 and FIG-6: conjunction-aware vs naïve normalization of Ic.

Regenerates both figures exactly (9 facts vs 14 facts) and times the two
algorithms — the paper's size-vs-speed trade-off (end of Section 4.2)
made measurable.
"""

from repro.concrete import concrete_fact, naive_normalize, normalize
from repro.serialize import render_concrete_instance
from repro.temporal import Interval, interval
from repro.workloads import salary_conjunction

from conftest import emit

FIGURE_5 = {
    concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2013)),
    concrete_fact("E", "Ada", "IBM", interval=Interval(2013, 2014)),
    concrete_fact("E", "Ada", "Google", interval=interval(2014)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2015)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2015, 2018)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2013, 2014)),
    concrete_fact("S", "Ada", "18k", interval=interval(2014)),
    concrete_fact("S", "Bob", "13k", interval=Interval(2015, 2018)),
    concrete_fact("S", "Bob", "13k", interval=interval(2018)),
}

FIGURE_6 = {
    concrete_fact("E", "Ada", "IBM", interval=Interval(2012, 2013)),
    concrete_fact("E", "Ada", "IBM", interval=Interval(2013, 2014)),
    concrete_fact("E", "Ada", "Google", interval=Interval(2014, 2015)),
    concrete_fact("E", "Ada", "Google", interval=Interval(2015, 2018)),
    concrete_fact("E", "Ada", "Google", interval=interval(2018)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2013, 2014)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2014, 2015)),
    concrete_fact("E", "Bob", "IBM", interval=Interval(2015, 2018)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2013, 2014)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2014, 2015)),
    concrete_fact("S", "Ada", "18k", interval=Interval(2015, 2018)),
    concrete_fact("S", "Ada", "18k", interval=interval(2018)),
    concrete_fact("S", "Bob", "13k", interval=Interval(2015, 2018)),
    concrete_fact("S", "Bob", "13k", interval=interval(2018)),
}


def test_fig05_algorithm1(benchmark, source, setting):
    """Figure 5: norm(Ic, {E+(n,c,t) ∧ S+(n,s,t)}) — 9 facts."""
    conjunctions = [salary_conjunction()]
    normalized = benchmark(lambda: normalize(source, conjunctions))
    assert normalized.facts() == FIGURE_5
    emit(
        "FIG-5 (paper Figure 5): Algorithm 1 normalization (9 facts)",
        render_concrete_instance(normalized, setting.lifted_source_schema()),
    )


def test_fig06_naive_normalization(benchmark, source, setting):
    """Figure 6: the naïve endpoint-based normalization — 14 facts."""
    normalized = benchmark(lambda: naive_normalize(source))
    assert normalized.facts() == FIGURE_6
    assert len(normalized) > len(FIGURE_5)  # the paper's comparison
    emit(
        "FIG-6 (paper Figure 6): naïve normalization (14 facts)",
        render_concrete_instance(normalized, setting.lifted_source_schema()),
    )
