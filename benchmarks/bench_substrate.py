"""Substrate benchmarks: coalescing, serialization, homomorphism search.

Not tied to a figure — these time the building blocks whose constants
determine every number above them, on generated workloads large enough
to be meaningful.
"""

from repro.relational import Instance, fact, parse_conjunction
from repro.relational.algebra import evaluate_conjunction
from repro.relational.homomorphism import find_homomorphisms
from repro.serialize import (
    concrete_instance_from_json,
    concrete_instance_to_json,
    instance_from_csv_dict,
    instance_to_csv_dict,
)
from repro.workloads import random_concrete_instance, random_employment_history


def uncoalesced_instance():
    # Deliberately fragmented: many value-equal facts over adjacent stamps.
    base = random_concrete_instance(
        200, relations=(("R", 2),), domain_size=10, timeline=60, seed=21
    )
    return base


def test_bench_coalesce(benchmark):
    instance = uncoalesced_instance()
    merged = benchmark(lambda: instance.coalesce())
    assert merged.is_coalesced()
    assert len(merged) <= len(instance)


def test_bench_json_roundtrip(benchmark):
    instance = random_employment_history(people=10, timeline=40, seed=3).instance

    def roundtrip():
        return concrete_instance_from_json(concrete_instance_to_json(instance))

    restored = benchmark(roundtrip)
    assert restored == instance


def test_bench_csv_roundtrip(benchmark):
    instance = random_employment_history(people=10, timeline=40, seed=3).instance

    def roundtrip():
        return instance_from_csv_dict(instance_to_csv_dict(instance))

    restored = benchmark(roundtrip)
    assert restored == instance


def _join_snapshot(size: int) -> Instance:
    return Instance(
        [fact("E", f"p{i}", f"c{i % 7}") for i in range(size)]
        + [fact("S", f"p{i}", f"{i % 5}k") for i in range(size)]
    )


def test_bench_homomorphism_join(benchmark):
    snapshot = _join_snapshot(300)
    conjunction = parse_conjunction("E(n, c) & S(n, s)")
    results = benchmark(lambda: list(find_homomorphisms(conjunction, snapshot)))
    assert len(results) == 300


def test_bench_algebra_join(benchmark):
    snapshot = _join_snapshot(300)
    conjunction = parse_conjunction("E(n, c) & S(n, s)")
    result = benchmark(lambda: evaluate_conjunction(conjunction, snapshot))
    assert len(result) == 300
