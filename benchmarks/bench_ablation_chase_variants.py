"""ABL-1: chase variant ablations — standard vs oblivious, and the core.

Quantifies the design choices DESIGN.md calls out: the standard variant's
extension check suppresses redundant nulls; the core computation removes
whatever redundancy remains.  Sizes are asserted, timings benchmarked.
"""

from repro.chase import chase_snapshot, core_of
from repro.concrete import c_chase
from repro.dependencies import DataExchangeSetting
from repro.relational import Instance, Schema, fact
from repro.workloads import exchange_setting_join, random_employment_history

from conftest import emit

SETTING = exchange_setting_join()

# A mapping where the variants genuinely diverge: an existential tgd that
# fires once per matching fact under "oblivious", once per key otherwise.
WIDE_SETTING = DataExchangeSetting.create(
    Schema.of(R=("K", "V")),
    Schema.of(T=("K", "Z")),
    st_tgds=["R(k, v) -> EXISTS z . T(k, z)"],
)


def wide_snapshot(keys: int, values_per_key: int) -> Instance:
    return Instance(
        fact("R", f"k{key}", f"v{value}")
        for key in range(keys)
        for value in range(values_per_key)
    )


def test_ablation_standard_vs_oblivious_size(benchmark):
    snapshot = wide_snapshot(keys=10, values_per_key=5)
    standard = chase_snapshot(snapshot, WIDE_SETTING, variant="standard")
    oblivious = chase_snapshot(snapshot, WIDE_SETTING, variant="oblivious")
    assert len(standard.target) == 10  # one per key
    assert len(oblivious.target) == 50  # one per fact
    emit(
        "ABL-1a: tgd firing policy (10 keys × 5 values)",
        f"  standard:  {len(standard.target)} target facts\n"
        f"  oblivious: {len(oblivious.target)} target facts\n"
        f"  core(oblivious): {len(core_of(oblivious.target))} facts",
    )
    benchmark(lambda: chase_snapshot(snapshot, WIDE_SETTING, variant="standard"))


def test_ablation_oblivious_timing(benchmark):
    snapshot = wide_snapshot(keys=10, values_per_key=5)
    benchmark(lambda: chase_snapshot(snapshot, WIDE_SETTING, variant="oblivious"))


def test_ablation_core_recovers_standard(benchmark):
    snapshot = wide_snapshot(keys=8, values_per_key=4)
    oblivious = chase_snapshot(snapshot, WIDE_SETTING, variant="oblivious").target
    core = benchmark(lambda: core_of(oblivious))
    standard = chase_snapshot(snapshot, WIDE_SETTING, variant="standard").target
    # The core of the oblivious result has the size of the standard one.
    assert len(core) == len(standard)


def test_ablation_cchase_variants_on_history(benchmark):
    workload = random_employment_history(people=4, timeline=30, seed=13)
    standard = c_chase(workload.instance, SETTING, variant="standard")
    oblivious = c_chase(workload.instance, SETTING, variant="oblivious")
    assert standard.succeeded and oblivious.succeeded
    assert len(standard.target) <= len(oblivious.target)
    emit(
        "ABL-1b: c-chase firing policy on a generated history",
        f"  standard:  {len(standard.target)} facts, "
        f"{len(standard.trace.tgd_steps)} tgd steps\n"
        f"  oblivious: {len(oblivious.target)} facts, "
        f"{len(oblivious.trace.tgd_steps)} tgd steps",
    )
    benchmark(
        lambda: c_chase(workload.instance, SETTING, variant="oblivious")
    )
