"""SCALE-3: process-pool parallel shard execution of the abstract chase.

The region scheduler's ``threads`` executor is GIL-bound, so CPU-bound
chases gain nothing from it; the ``processes`` executor ships each shard
to a worker process in the shard-codec wire format and runs them truly
in parallel.  These benchmarks compare the serial executor against a
*warm* four-worker pool (pool startup is a one-time cost a server pays
once, so it stays outside the timed region) on the largest
``bench_scale_incremental`` workload, for both the incremental and the
from-scratch schedule.

What to expect depends on the machine: the wall-clock win is bounded by
the parent's serial share (task encode, outcome decode, merge concat —
measured at roughly a third of the serial runtime on the incremental
schedule, far less on the from-scratch one) and by the CPU count.  On a
single-core container the processes executor *loses* — the workers
timeslice one core and the codec overhead is pure addition; the numbers
are honest either way, and the summary emits the observed ratio.
"""

import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.abstract_view import abstract_chase, semantics
from repro.workloads import exchange_setting_org, random_org_history

from conftest import emit

ORG_SETTING = exchange_setting_org()
SHARDS = 4


def _largest_org_abstract():
    workload = random_org_history(people=128, timeline=512, seed=17)
    return semantics(workload.instance)


@pytest.fixture(scope="module")
def abstract():
    return _largest_org_abstract()


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=SHARDS) as executor:
        yield executor


@pytest.mark.parametrize("incremental", [True, False], ids=["incr", "full"])
def test_parallel_serial_baseline(benchmark, abstract, incremental):
    result = benchmark(
        lambda: abstract_chase(
            abstract,
            ORG_SETTING,
            shards=SHARDS,
            executor="serial",
            incremental=incremental,
        )
    )
    assert result.succeeded


@pytest.mark.parametrize("incremental", [True, False], ids=["incr", "full"])
def test_parallel_process_pool(benchmark, abstract, pool, incremental):
    # One throwaway run forks/warms the workers before timing starts.
    abstract_chase(
        abstract,
        ORG_SETTING,
        shards=SHARDS,
        executor=pool,
        incremental=incremental,
    )
    result = benchmark(
        lambda: abstract_chase(
            abstract,
            ORG_SETTING,
            shards=SHARDS,
            executor=pool,
            incremental=incremental,
        )
    )
    assert result.succeeded
    assert all(report.remote for report in result.shard_reports)


def test_parallel_speedup_summary(benchmark, abstract, pool):
    rows = []
    for incremental in (True, False):
        serial_times = []
        pool_times = []
        for _ in range(3):
            started = time.perf_counter()
            serial = abstract_chase(
                abstract,
                ORG_SETTING,
                shards=SHARDS,
                executor="serial",
                incremental=incremental,
            )
            serial_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            parallel = abstract_chase(
                abstract,
                ORG_SETTING,
                shards=SHARDS,
                executor=pool,
                incremental=incremental,
            )
            pool_times.append(time.perf_counter() - started)
        assert parallel.target == serial.target
        ratio = min(serial_times) / min(pool_times)
        label = "incremental" if incremental else "from-scratch"
        rows.append(
            f"  {label:>12}: serial {min(serial_times) * 1000:8.1f} ms, "
            f"4-worker pool {min(pool_times) * 1000:8.1f} ms, "
            f"speedup {ratio:5.2f}x"
        )
    emit(
        "SCALE-3: process-pool vs serial at 4 shards "
        "(org workload, people=128; pool pre-warmed)",
        "\n".join(rows),
    )
    benchmark(
        lambda: abstract_chase(
            abstract, ORG_SETTING, shards=SHARDS, executor=pool
        )
    )


# ---------------------------------------------------------------------------
# The parent's serial share: task encode + outcome decode + merge
# ---------------------------------------------------------------------------
#
# Amdahl's bound for the processes executor: whatever the parent does
# serially — encoding four shard tasks, decoding four outcomes, merging
# — caps the speedup no matter how many workers chase.  This benchmark
# times exactly that share, with the workers' compute done once outside
# the timed region (the outcomes are byte payloads, so re-decoding them
# is the real per-run parent cost).


def _shard_blocks(abstract):
    from repro.abstract_view.abstract_chase import _partition
    from repro.chase.nulls import NullFactory

    blocks = _partition(abstract.regions(), SHARDS)
    base = NullFactory()
    generation = base.new_generation()
    factories = [
        base.for_shard(index, generation) for index in range(len(blocks))
    ]
    return blocks, factories


def _encode_tasks(abstract, blocks, factories):
    from repro.serialize import shard_codec
    from repro.temporal.interval import Interval

    payloads = []
    for index, block in enumerate(blocks):
        span = Interval(block[0].start, block[-1].end)
        templates = tuple(
            template
            for template in abstract.templates
            if template.interval.overlaps(span)
        )
        payloads.append(
            shard_codec.encode_shard_task(
                shard_codec.ShardTask(
                    shard=index,
                    prefix=factories[index].prefix,
                    counter=factories[index].issued,
                    variant="standard",
                    engine="delta",
                    incremental=True,
                    regions=block,
                    templates=templates,
                    setting=ORG_SETTING,
                )
            )
        )
    return payloads


def test_parent_wire_share(benchmark, abstract):
    from repro.abstract_view.abstract_chase import (
        _BlockOutcome,
        _merge,
        _process_worker,
    )
    from repro.serialize import shard_codec

    blocks, factories = _shard_blocks(abstract)
    payloads = _encode_tasks(abstract, blocks, factories)
    # Worker compute, once, untimed: the timed region below replays only
    # the parent's wire work against these recorded outcome payloads.
    raw_outcomes = [_process_worker(payload) for payload in payloads]

    def parent_share():
        _encode_tasks(abstract, blocks, factories)
        outcomes = []
        for raw in raw_outcomes:
            decoded = shard_codec.decode_shard_outcome(raw)
            outcomes.append(
                _BlockOutcome(
                    results=list(decoded.results),
                    region_reuse=decoded.region_reuse,
                    error=decoded.error,
                    report=decoded.report,
                    merged_templates=decoded.merged_templates,
                )
            )
        return _merge(outcomes)

    result = benchmark(parent_share)
    assert result.succeeded


# ---------------------------------------------------------------------------
# Script mode: one-shot serial-vs-parallel parity pass for CI
# ---------------------------------------------------------------------------
#
#   PYTHONPATH=src python benchmarks/bench_parallel_shards.py --smoke \
#       --executor processes --workers 4
#
# The dev container is single-core, so the pytest benchmarks above can
# only document that processes lose there; the CI multi-core job runs
# this smoke pass on a 4-vCPU runner, asserts byte-identical output,
# and publishes the observed serial/parallel ratio to the step summary.


def _smoke_main(argv=None) -> int:
    import argparse
    import os
    import sys

    parser = argparse.ArgumentParser(
        description="one-shot serial-vs-parallel shard parity pass"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="run one comparison and exit"
    )
    parser.add_argument(
        "--executor", choices=["threads", "processes"], default="processes"
    )
    parser.add_argument("--workers", type=int, default=SHARDS)
    parser.add_argument(
        "--people", type=int, default=96, help="workload size (org history)"
    )
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("this script only supports --smoke (pytest runs the rest)")

    workload = random_org_history(people=args.people, timeline=384, seed=17)
    abstract = semantics(workload.instance)
    rows = []
    ratios = []
    from contextlib import nullcontext

    pool_context = (
        ProcessPoolExecutor(max_workers=args.workers)
        if args.executor == "processes"
        else nullcontext("threads")
    )
    transport = "n/a"
    with pool_context as executor:
        # Warm the pool (fork + import cost is a one-time server expense).
        abstract_chase(abstract, ORG_SETTING, shards=args.workers, executor=executor)
        for incremental in (True, False):
            serial_times, parallel_times = [], []
            for _ in range(3):
                started = time.perf_counter()
                serial = abstract_chase(
                    abstract,
                    ORG_SETTING,
                    shards=args.workers,
                    executor="serial",
                    incremental=incremental,
                )
                serial_times.append(time.perf_counter() - started)
                started = time.perf_counter()
                parallel = abstract_chase(
                    abstract,
                    ORG_SETTING,
                    shards=args.workers,
                    executor=executor,
                    incremental=incremental,
                )
                parallel_times.append(time.perf_counter() - started)
            if parallel.target != serial.target:
                print("PARITY FAILURE: parallel target differs from serial")
                return 1
            ratio = min(serial_times) / min(parallel_times)
            ratios.append(ratio)
            label = "incremental" if incremental else "from-scratch"
            # The parent's serial share of the last parallel run: task
            # encode, outcome decode, merge (only the processes executor
            # reports it — Amdahl's cap on the speedup column).
            timings = parallel.parent_timings
            if timings is not None:
                transport = timings.transport
                wire = (
                    f"{timings.encode_seconds * 1000:.1f} / "
                    f"{timings.decode_seconds * 1000:.1f} / "
                    f"{timings.merge_seconds * 1000:.1f}"
                )
            else:
                wire = "—"
            rows.append(
                f"| {label} | {min(serial_times) * 1000:.1f} ms "
                f"| {min(parallel_times) * 1000:.1f} ms | {ratio:.2f}x "
                f"| {wire} |"
            )
            print(
                f"{label}: serial {min(serial_times) * 1000:.1f} ms, "
                f"{args.executor} {min(parallel_times) * 1000:.1f} ms, "
                f"ratio {ratio:.2f}x, parent encode/decode/merge {wire} ms"
            )
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        try:
            with open(summary, "a", encoding="utf-8") as handle:
                handle.write(
                    "## Multi-core shard parity\n\n"
                    f"`--executor {args.executor} --workers {args.workers}` on "
                    f"{os.cpu_count()} CPUs, wire transport `{transport}` — "
                    "outputs byte-identical to serial.\n\n"
                    "| schedule | serial | parallel | speedup "
                    "| parent enc/dec/merge (ms) |\n"
                    "|---|---:|---:|---:|---:|\n" + "\n".join(rows) + "\n"
                )
        except OSError as exc:  # pragma: no cover - CI file-system hiccup
            print(f"(could not write GITHUB_STEP_SUMMARY: {exc})", file=sys.stderr)
    print(
        "PARALLEL-SMOKE: executor=%s workers=%d transport=%s "
        "ratio_incr=%.2f ratio_full=%.2f"
        % (args.executor, args.workers, transport, ratios[0], ratios[1])
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(_smoke_main())
