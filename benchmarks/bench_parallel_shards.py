"""SCALE-3: process-pool parallel shard execution of the abstract chase.

The region scheduler's ``threads`` executor is GIL-bound, so CPU-bound
chases gain nothing from it; the ``processes`` executor ships each shard
to a worker process in the shard-codec wire format and runs them truly
in parallel.  These benchmarks compare the serial executor against a
*warm* four-worker pool (pool startup is a one-time cost a server pays
once, so it stays outside the timed region) on the largest
``bench_scale_incremental`` workload, for both the incremental and the
from-scratch schedule.

What to expect depends on the machine: the wall-clock win is bounded by
the parent's serial share (task encode, outcome decode, merge concat —
measured at roughly a third of the serial runtime on the incremental
schedule, far less on the from-scratch one) and by the CPU count.  On a
single-core container the processes executor *loses* — the workers
timeslice one core and the codec overhead is pure addition; the numbers
are honest either way, and the summary emits the observed ratio.
"""

import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.abstract_view import abstract_chase, semantics
from repro.workloads import exchange_setting_org, random_org_history

from conftest import emit

ORG_SETTING = exchange_setting_org()
SHARDS = 4


def _largest_org_abstract():
    workload = random_org_history(people=128, timeline=512, seed=17)
    return semantics(workload.instance)


@pytest.fixture(scope="module")
def abstract():
    return _largest_org_abstract()


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=SHARDS) as executor:
        yield executor


@pytest.mark.parametrize("incremental", [True, False], ids=["incr", "full"])
def test_parallel_serial_baseline(benchmark, abstract, incremental):
    result = benchmark(
        lambda: abstract_chase(
            abstract,
            ORG_SETTING,
            shards=SHARDS,
            executor="serial",
            incremental=incremental,
        )
    )
    assert result.succeeded


@pytest.mark.parametrize("incremental", [True, False], ids=["incr", "full"])
def test_parallel_process_pool(benchmark, abstract, pool, incremental):
    # One throwaway run forks/warms the workers before timing starts.
    abstract_chase(
        abstract,
        ORG_SETTING,
        shards=SHARDS,
        executor=pool,
        incremental=incremental,
    )
    result = benchmark(
        lambda: abstract_chase(
            abstract,
            ORG_SETTING,
            shards=SHARDS,
            executor=pool,
            incremental=incremental,
        )
    )
    assert result.succeeded
    assert all(report.remote for report in result.shard_reports)


def test_parallel_speedup_summary(benchmark, abstract, pool):
    rows = []
    for incremental in (True, False):
        serial_times = []
        pool_times = []
        for _ in range(3):
            started = time.perf_counter()
            serial = abstract_chase(
                abstract,
                ORG_SETTING,
                shards=SHARDS,
                executor="serial",
                incremental=incremental,
            )
            serial_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            parallel = abstract_chase(
                abstract,
                ORG_SETTING,
                shards=SHARDS,
                executor=pool,
                incremental=incremental,
            )
            pool_times.append(time.perf_counter() - started)
        assert parallel.target == serial.target
        ratio = min(serial_times) / min(pool_times)
        label = "incremental" if incremental else "from-scratch"
        rows.append(
            f"  {label:>12}: serial {min(serial_times) * 1000:8.1f} ms, "
            f"4-worker pool {min(pool_times) * 1000:8.1f} ms, "
            f"speedup {ratio:5.2f}x"
        )
    emit(
        "SCALE-3: process-pool vs serial at 4 shards "
        "(org workload, people=128; pool pre-warmed)",
        "\n".join(rows),
    )
    benchmark(
        lambda: abstract_chase(
            abstract, ORG_SETTING, shards=SHARDS, executor=pool
        )
    )
