"""SERVE-1: the resident chase daemon vs the cold CLI.

The daemon (``python -m repro serve``) keeps each session's chased
target and replay ledgers resident between requests, so the org-chart
churn workload pays three very different prices for the same answers:

* a **warm delta** is one HTTP round-trip plus incremental replay of
  the unchanged normalization groups — no process start, no JSON reload
  of the mapping, no from-scratch chase;
* a **cold CLI chase** of the same cumulative instance pays interpreter
  start-up, input parsing and a full c-chase on every call — the
  pre-server workflow this PR replaces (>10× slower per update);
* an **identical re-chase** digests to the same content address and is
  served straight from the chase cache — O(1) in the chase size.

The query benchmark times the session answer ledger: a repeated query
replays recorded per-disjunct answers instead of re-evaluating.

Also a script: ``python benchmarks/bench_server.py --smoke`` boots a
daemon, drives ~30 seconds of churn over real HTTP, and prints req/sec
(appended to ``$GITHUB_STEP_SUMMARY`` when set) for the CI smoke job.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.serialize import (
    concrete_fact_to_json,
    concrete_instance_to_json,
    setting_to_json,
)
from repro.server import ServerClient, ServerThread
from repro.workloads import exchange_setting_org, random_org_history

ORG_SETTING_JSON = setting_to_json(exchange_setting_org())
_WORKLOAD = random_org_history(people=32, timeline=64, seed=23)
ORG_FACTS = list(_WORKLOAD.instance)
BASE_FACTS = len(ORG_FACTS) - 8  # keep 8 aside as the churn stream

REPORTS_QUERY = "answer(e, m) :- Reports(e, m)"


def _base_instance():
    instance = type(_WORKLOAD.instance)()
    for fact in ORG_FACTS[:BASE_FACTS]:
        instance.add(fact)
    return instance


def _base_source_json():
    return concrete_instance_to_json(_base_instance())


def _churn_pair_json(index):
    fact = ORG_FACTS[BASE_FACTS + (index % 8)]
    return [concrete_fact_to_json(fact)]


@pytest.fixture(scope="module")
def server():
    with ServerThread() as thread:
        yield thread


@pytest.fixture(scope="module")
def warm_client(server):
    with ServerClient(port=server.port) as client:
        client.create("bench", ORG_SETTING_JSON, _base_source_json())
        yield client


def test_server_warm_delta(benchmark, warm_client):
    """One churn cycle (add + remove) over HTTP against warm ledgers."""
    batch = _churn_pair_json(0)

    def cycle():
        warm_client.delta("bench", add=batch)
        warm_client.delta("bench", remove=batch)

    benchmark(cycle)
    info = warm_client.info("bench")
    assert info["source_facts"] == BASE_FACTS


def test_server_query_replay(benchmark, warm_client):
    """A repeated query replays the session's answer ledger."""
    first = warm_client.query("bench", REPORTS_QUERY)
    assert first["answers"]
    result = benchmark(lambda: warm_client.query("bench", REPORTS_QUERY))
    assert result["replayed"] >= 1
    assert result["evaluated"] == 0


def test_server_cached_rechase(benchmark, server):
    """Re-creating a session from identical inputs is a cache hit."""
    source = _base_source_json()
    with ServerClient(port=server.port) as client:
        client.create("cached", ORG_SETTING_JSON, source)

        def recreate():
            return client.create(
                "cached", ORG_SETTING_JSON, source, replace=True
            )

        result = benchmark(recreate)
        assert result["cached"] is True
        client.evict("cached")


def test_cold_cli_chase(benchmark, tmp_path):
    """The pre-server unit of work: a full CLI chase per update."""
    mapping = tmp_path / "mapping.json"
    source = tmp_path / "source.json"
    out = tmp_path / "solution.json"
    mapping.write_text(json.dumps(ORG_SETTING_JSON))
    source.write_text(json.dumps(_base_source_json()))

    def cold_chase():
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "chase",
                "--mapping",
                str(mapping),
                "--source",
                str(source),
                "--out",
                str(out),
            ],
            check=True,
            env=_cli_env(),
        )

    benchmark.pedantic(cold_chase, rounds=5, iterations=1, warmup_rounds=1)
    assert json.loads(out.read_text())["facts"]


def _cli_env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# --smoke: the CI server-smoke job's throughput probe
# ---------------------------------------------------------------------------


def _smoke(seconds: float = 30.0) -> int:
    with ServerThread() as thread, ServerClient(port=thread.port) as client:
        client.create("smoke", ORG_SETTING_JSON, _base_source_json())

        requests = 0
        deadline = time.perf_counter() + seconds
        index = 0
        while time.perf_counter() < deadline:
            batch = _churn_pair_json(index)
            client.delta("smoke", add=batch)
            client.delta("smoke", remove=batch)
            client.query("smoke", REPORTS_QUERY)
            requests += 3
            index += 1
        elapsed = seconds
        rate = requests / elapsed

        cli_start = time.perf_counter()
        with tempfile.TemporaryDirectory() as tmp:
            mapping = Path(tmp) / "mapping.json"
            source = Path(tmp) / "source.json"
            mapping.write_text(json.dumps(ORG_SETTING_JSON))
            source.write_text(json.dumps(_base_source_json()))
            subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "chase",
                    "--mapping",
                    str(mapping),
                    "--source",
                    str(source),
                    "--out",
                    str(Path(tmp) / "out.json"),
                ],
                check=True,
                env=_cli_env(),
            )
        cli_seconds = time.perf_counter() - cli_start
        speedup = rate * cli_seconds  # warm requests per cold-CLI unit

        stats = client.stats()
        lines = [
            "### repro server smoke",
            "",
            f"- warm requests: **{requests}** in {elapsed:.0f}s "
            f"(**{rate:.1f} req/sec**)",
            f"- one cold CLI chase: {cli_seconds:.2f}s "
            f"(warm throughput ≈ {speedup:.0f}× per cold-CLI unit)",
            f"- chase cache: {stats['cache']['hits']} hits / "
            f"{stats['cache']['misses']} misses",
        ]
        report = "\n".join(lines)
        print(report)
        summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary:
            with open(summary, "a") as handle:
                handle.write(report + "\n")
        return 0 if rate > 1.0 else 1


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        seconds = 30.0
        if "--seconds" in argv:
            seconds = float(argv[argv.index("--seconds") + 1])
        sys.exit(_smoke(seconds))
    print("usage: python benchmarks/bench_server.py --smoke [--seconds N]")
    sys.exit(2)
