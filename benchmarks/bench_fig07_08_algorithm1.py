"""FIG-7/8: Algorithm 1 end to end on Example 14's R+/P+/S+ instance.

Regenerates Figure 8 exactly (13 facts; f4 untouched) together with the
algorithm's internal account (3 matched sets, 2 components), and times
norm(Ic, Φ+) on this input.
"""

from repro.concrete import concrete_fact, normalize_with_report
from repro.serialize import render_concrete_instance
from repro.temporal import Interval, interval
from repro.workloads import (
    algorithm1_example_conjunctions,
    algorithm1_example_instance,
)

from conftest import emit

FIGURE_8 = {
    concrete_fact("R", "a", interval=Interval(5, 7)),
    concrete_fact("R", "a", interval=Interval(7, 8)),
    concrete_fact("R", "a", interval=Interval(8, 10)),
    concrete_fact("R", "a", interval=Interval(10, 11)),
    concrete_fact("P", "a", interval=Interval(8, 10)),
    concrete_fact("P", "a", interval=Interval(10, 11)),
    concrete_fact("P", "a", interval=Interval(11, 15)),
    concrete_fact("P", "b", interval=Interval(20, 25)),
    concrete_fact("S", "a", interval=Interval(7, 8)),
    concrete_fact("S", "a", interval=Interval(8, 10)),
    concrete_fact("S", "b", interval=Interval(18, 20)),
    concrete_fact("S", "b", interval=Interval(20, 25)),
    concrete_fact("S", "b", interval=interval(25)),
}


def test_fig07_08_algorithm1(benchmark):
    instance = algorithm1_example_instance()
    conjunctions = algorithm1_example_conjunctions()

    output, report = benchmark(
        lambda: normalize_with_report(instance, conjunctions)
    )
    assert output.facts() == FIGURE_8
    assert report.matched_sets == 3  # S = {{f1,f2},{f2,f3},{f4,f5}}
    assert report.components == 2  # after merging: {f1,f2,f3}, {f4,f5}
    assert report.facts_fragmented == 4  # f4 = P+(b,[20,25)) untouched
    emit(
        "FIG-7 (paper Figure 7): input of the normalization algorithm",
        render_concrete_instance(instance),
    )
    emit(
        "FIG-8 (paper Figure 8): output of the normalization algorithm "
        f"({report.input_size} -> {report.output_size} facts, "
        f"{report.components} components)",
        render_concrete_instance(output),
    )
