#!/usr/bin/env python3
"""Compare two pytest-benchmark JSON files and fail on regressions.

Usage::

    python benchmarks/compare_bench.py BENCH_baseline.json BENCH_pr2.json \
        --max-regression 0.20

Benchmarks are matched by their pytest ``fullname`` and compared on the
``min`` statistic (the least noisy number pytest-benchmark reports).  A
benchmark REGRESSES when ``candidate_min > baseline_min * (1 + R)`` with
``R`` the allowed regression ratio; any regression makes the script exit
non-zero, which is what `make bench-compare` keys off.  Benchmarks
present on only one side are reported — current-run benchmarks absent
from the baseline print as ``(new benchmark)`` — and never fail the run
or enter the regression gate (the suite is allowed to grow).  A missing
or malformed JSON file, and entries without stats (a benchmark that
errored mid-run), produce a clean diagnostic instead of a traceback.

Exit codes are CI contract: **0** the gate passed, **1** at least one
benchmark regressed past the threshold (the only "your change is bad"
signal), **2** the comparison could not run at all (missing/corrupt
input).  The run always ends with one machine-readable line::

    BENCH-COMPARE: shared=41 regressed=0 new=5 missing=0 gate=20% verdict=OK

and, when ``$GITHUB_STEP_SUMMARY`` is set (GitHub Actions), appends a
markdown summary table to it so the verdict lands on the workflow page.

Trend mode reports deltas across the whole committed series instead of
gating one pair::

    python benchmarks/compare_bench.py --trend

With no explicit file list, trend mode globs ``BENCH_*.json`` from the
repository root itself, so a freshly committed ``BENCH_prN.json`` joins
the series without touching the Makefile.  An explicit list still
works.  Files are ordered baseline-first, then by PR number; each benchmark
prints one row of per-file minimums plus the overall speedup from its
first to its last appearance.  Trend mode is informational only — it
always exits 0 (given readable inputs) and applies no regression gate;
``make bench-trend`` wraps it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_minimums(path: Path) -> dict[str, float]:
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        print(
            f"error: cannot read benchmark file {path}: {exc}\n"
            "(run `make bench-compare` after committing a baseline, or "
            "regenerate it with `pytest benchmarks --benchmark-json=...`)",
            file=sys.stderr,
        )
        raise SystemExit(2) from None
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    minimums: dict[str, float] = {}
    skipped: list[str] = []
    for bench in payload.get("benchmarks", ()):
        name = bench.get("fullname", "<unnamed>")
        stats = bench.get("stats") or {}
        minimum = stats.get("min")
        if isinstance(minimum, (int, float)):
            minimums[name] = float(minimum)
        else:
            skipped.append(name)
    for name in skipped:
        print(f"(no stats, skipped) {name} in {path}")
    return minimums


def _series_key(path: Path) -> tuple:
    """Baseline first, then PR files by number, then everything else."""
    stem = path.stem
    if stem == "BENCH_baseline":
        return (0, 0, stem)
    if stem.startswith("BENCH_pr") and stem[len("BENCH_pr"):].isdigit():
        return (1, int(stem[len("BENCH_pr"):]), stem)
    return (2, 0, stem)


def _label(path: Path) -> str:
    stem = path.stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


def run_trend(files: list[Path]) -> int:
    """Per-benchmark minimums across the whole series, oldest first."""
    series = sorted(files, key=_series_key)
    minimums = [load_minimums(path) for path in series]
    labels = [_label(path) for path in series]
    names = sorted({name for data in minimums for name in data})
    name_width = max(
        (len(name.split("::")[-1]) for name in names), default=10
    )
    column = max(max((len(label) for label in labels), default=7), 9)
    header = " ".join(f"{label:>{column}s}" for label in labels)
    print(f"{'benchmark':{name_width}s} {header} {'trend':>8s}")
    for name in names:
        cells = []
        observed: list[float] = []
        for data in minimums:
            value = data.get(name)
            if value is None:
                cells.append(f"{'—':>{column}s}")
            else:
                observed.append(value)
                cells.append(f"{value * 1000:{column - 2}.3f}ms")
        trend = (
            f"{observed[0] / observed[-1]:7.2f}x"
            if len(observed) > 1 and observed[-1]
            else f"{'—':>8s}"
        )
        print(f"{name.split('::')[-1]:{name_width}s} {' '.join(cells)} {trend}")
    print(
        f"BENCH-TREND: files={len(series)} benchmarks={len(names)} "
        f"({' -> '.join(labels)})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", type=Path, nargs="*")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="allowed slowdown ratio before failing (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--trend",
        action="store_true",
        help="report minimums across the whole series instead of gating "
        "a baseline/candidate pair",
    )
    args = parser.parse_args(argv)

    if args.trend:
        files = args.files
        if not files:
            # The committed series lives next to this script's parent:
            # glob it so new BENCH_prN.json files join automatically.
            root = Path(__file__).resolve().parent.parent
            files = sorted(root.glob("BENCH_*.json"))
            if not files:
                print(
                    f"error: no BENCH_*.json files found under {root}",
                    file=sys.stderr,
                )
                return 2
        return run_trend(files)
    if len(args.files) != 2:
        parser.error("pair mode takes exactly BASELINE and CANDIDATE files")
    args.baseline, args.candidate = args.files

    baseline = load_minimums(args.baseline)
    candidate = load_minimums(args.candidate)
    shared = sorted(set(baseline) & set(candidate))
    missing = sorted(set(baseline) - set(candidate))
    added = sorted(set(candidate) - set(baseline))

    regressions: list[str] = []
    rows: list[tuple[str, float, float, float, str]] = []
    width = max((len(name.split("::")[-1]) for name in shared), default=10)
    print(f"{'benchmark':{width}s} {'baseline':>10s} {'current':>10s} {'speedup':>8s}")
    for name in shared:
        base_min = baseline[name]
        cand_min = candidate[name]
        speedup = base_min / cand_min if cand_min else float("inf")
        marker = ""
        if cand_min > base_min * (1.0 + args.max_regression):
            marker = "  REGRESSED"
            regressions.append(name)
        rows.append(
            (name.split("::")[-1], base_min, cand_min, speedup, marker.strip())
        )
        print(
            f"{name.split('::')[-1]:{width}s} "
            f"{base_min * 1000:9.3f}ms {cand_min * 1000:9.3f}ms "
            f"{speedup:7.2f}x{marker}"
        )
    for name in missing:
        print(f"(only in baseline) {name}")
    for name in added:
        print(f"(new benchmark)    {name}")

    verdict = "FAIL" if regressions else "OK"
    summary = (
        f"BENCH-COMPARE: shared={len(shared)} regressed={len(regressions)} "
        f"new={len(added)} missing={len(missing)} "
        f"gate={args.max_regression:.0%} verdict={verdict}"
    )

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
            f"{args.max_regression:.0%} vs {args.baseline}:",
            file=sys.stderr,
        )
        for name in regressions:
            print(f"  {name}", file=sys.stderr)
    else:
        print(
            f"\nOK: no benchmark regressed more than {args.max_regression:.0%}."
        )
    print(summary)
    _write_step_summary(summary, rows, added, missing, args.max_regression)
    return 1 if regressions else 0


def _write_step_summary(
    summary: str,
    rows: list[tuple[str, float, float, float, str]],
    added: list[str],
    missing: list[str],
    gate: float,
) -> None:
    """Append a markdown verdict to ``$GITHUB_STEP_SUMMARY`` when set."""
    target = os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return
    lines = [
        "## Benchmark comparison",
        "",
        f"`{summary}`",
        "",
        "| benchmark | baseline | current | speedup | |",
        "|---|---:|---:|---:|---|",
    ]
    for name, base_min, cand_min, speedup, marker in rows:
        flag = "⚠️ REGRESSED" if marker else ""
        lines.append(
            f"| `{name}` | {base_min * 1000:.3f} ms "
            f"| {cand_min * 1000:.3f} ms | {speedup:.2f}x | {flag} |"
        )
    for name in added:
        lines.append(f"| `{name.split('::')[-1]}` | — | new | — | exempt |")
    for name in missing:
        lines.append(f"| `{name.split('::')[-1]}` | only in baseline | — | — | |")
    lines.append("")
    lines.append(f"Gate: fail on >{gate:.0%} slowdown of any shared benchmark.")
    lines.append("")
    try:
        with open(target, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines))
    except OSError as exc:
        print(f"(could not write GITHUB_STEP_SUMMARY: {exc})", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
