"""Offline-compatible setup shim.

Project metadata lives in pyproject.toml (PEP 621); setuptools >= 61
reads it from there.  This file exists because the target environments
are *offline* and ship setuptools without the third-party ``wheel``
package, while modern pip insists on building a PEP 660 editable wheel
for ``pip install -e .``.  Setuptools' editable machinery needs two
things from ``wheel``: the ``bdist_wheel`` command (for tags and the
egg-info → dist-info conversion) and ``wheel.wheelfile.WheelFile`` (to
zip the editable wheel with a RECORD).  When ``wheel`` is importable we
defer to it; otherwise the minimal stand-ins below are registered, which
support exactly the pure-Python editable path used by::

    pip install -e . --no-build-isolation

Building *distribution* wheels still requires the real ``wheel`` package.
"""

from __future__ import annotations

import base64
import hashlib
import os
import re
import shutil
import zipfile

from setuptools import setup


def _native_wheel_support() -> bool:
    """Can setuptools build wheels without our stand-ins?

    Modern setuptools (>= 70.1) bundles its own ``bdist_wheel`` command;
    otherwise the real third-party ``wheel`` package provides it.  Either
    way the native machinery is complete and must not be shadowed.
    """
    try:
        import setuptools.command.bdist_wheel  # noqa: F401

        return True
    except ImportError:
        pass
    try:
        import wheel.bdist_wheel  # noqa: F401

        return True
    except ImportError:
        return False


_HAVE_WHEEL = _native_wheel_support()


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


_WHEEL_NAME_RE = re.compile(
    r"^(?P<namever>(?P<name>.+?)-(?P<version>\d[^-]*?))"
    r"(-(?P<build>\d[^-]*?))?-(?P<pyver>.+?)-(?P<abi>.+?)-(?P<plat>.+?)\.whl$"
)


class _MiniWheelFile(zipfile.ZipFile):
    """Just enough of wheel.wheelfile.WheelFile for editable wheels.

    Records a sha256 digest for every member written and appends the
    RECORD file on close, which is what pip verifies at install time.
    """

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode, compression=compression)
        parsed = _WHEEL_NAME_RE.match(os.path.basename(str(file)))
        if parsed is None:
            raise ValueError(f"not a valid wheel filename: {file}")
        self.dist_info_path = f"{parsed.group('namever')}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._record_entries: list[str] = []

    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
        if isinstance(data, str):
            data = data.encode("utf-8")
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        arcname = getattr(zinfo_or_arcname, "filename", zinfo_or_arcname)
        self._record_entries.append(
            f"{arcname},{_record_hash(data)},{len(data)}"
        )

    def write(self, filename, arcname=None, *args, **kwargs):
        super().write(filename, arcname, *args, **kwargs)
        with open(filename, "rb") as handle:
            data = handle.read()
        name = arcname if arcname is not None else filename
        self._record_entries.append(f"{name},{_record_hash(data)},{len(data)}")

    def write_files(self, base_dir):
        """Add every file under *base_dir* (deterministic order)."""
        collected = []
        for root, _dirs, files in os.walk(base_dir):
            for name in files:
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname != self.record_path:
                    collected.append((arcname, path))
        for arcname, path in sorted(collected):
            self.write(path, arcname)

    def close(self):
        if self.fp is not None and self.mode == "w":
            record = "\n".join(self._record_entries + [f"{self.record_path},,", ""])
            super().writestr(self.record_path, record.encode("utf-8"))
        super().close()


def _install_wheelfile_stub() -> None:
    """Make ``from wheel.wheelfile import WheelFile`` importable.

    No-op when a real ``wheel.wheelfile`` exists — the stub only fills
    the hole, it never shadows working machinery.
    """
    import sys
    import types

    try:
        import wheel.wheelfile  # noqa: F401

        return
    except ImportError:
        pass
    if "wheel.wheelfile" in sys.modules:
        return
    wheel_mod = types.ModuleType("wheel")
    wheelfile_mod = types.ModuleType("wheel.wheelfile")
    wheelfile_mod.WheelFile = _MiniWheelFile
    wheel_mod.wheelfile = wheelfile_mod
    sys.modules.setdefault("wheel", wheel_mod)
    sys.modules["wheel.wheelfile"] = wheelfile_mod


def _requires_to_metadata(requires_text: str) -> list[str]:
    """Translate egg-info requires.txt into Requires-Dist/Provides-Extra.

    Section headers are ``[extra]``, ``[extra:marker]`` or ``[:marker]``;
    markers must survive into the Requires-Dist environment marker or the
    dependency becomes unconditional.
    """
    lines: list[str] = []
    extra = None
    condition = None
    for raw in requires_text.splitlines():
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("[") and entry.endswith("]"):
            section = entry[1:-1]
            extra, _, condition = section.partition(":")
            extra = extra.strip()
            condition = condition.strip() or None
            if extra:
                lines.append(f"Provides-Extra: {extra}")
            continue
        clauses = []
        if condition:
            clauses.append(f"({condition})" if extra else condition)
        if extra:
            clauses.append(f'extra == "{extra}"')
        marker = f" ; {' and '.join(clauses)}" if clauses else ""
        lines.append(f"Requires-Dist: {entry}{marker}")
    return lines


def _make_shim_bdist_wheel():
    from distutils.cmd import Command

    class bdist_wheel(Command):  # noqa: N801 — distutils command naming
        """Tag/metadata provider for the PEP 660 editable build."""

        description = "minimal bdist_wheel stand-in (editable installs only)"
        user_options: list = []

        def initialize_options(self):
            pass

        def finalize_options(self):
            pass

        def run(self):
            raise RuntimeError(
                "building distribution wheels needs the real 'wheel' "
                "package; this offline shim only supports `pip install -e .`"
            )

        def get_tag(self):
            return ("py3", "none", "any")

        def write_wheelfile(self, wheelfile_base):
            content = (
                "Wheel-Version: 1.0\n"
                "Generator: setup-py-offline-shim\n"
                "Root-Is-Purelib: true\n"
                "Tag: py3-none-any\n"
            )
            path = os.path.join(wheelfile_base, "WHEEL")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)

        def egg2dist(self, egginfo_path, distinfo_path):
            """Convert an .egg-info directory into a .dist-info directory."""
            if os.path.exists(distinfo_path):
                shutil.rmtree(distinfo_path)
            os.makedirs(distinfo_path)
            with open(
                os.path.join(egginfo_path, "PKG-INFO"), encoding="utf-8"
            ) as handle:
                pkg_info = handle.read()
            requires_path = os.path.join(egginfo_path, "requires.txt")
            extra_headers: list[str] = []
            if os.path.exists(requires_path):
                with open(requires_path, encoding="utf-8") as handle:
                    extra_headers = _requires_to_metadata(handle.read())
            headers, separator, body = pkg_info.partition("\n\n")
            if extra_headers:
                headers = "\n".join([headers.rstrip("\n"), *extra_headers])
            with open(
                os.path.join(distinfo_path, "METADATA"), "w", encoding="utf-8"
            ) as handle:
                handle.write(headers + (separator + body if separator else "\n"))
            skipped = {
                "PKG-INFO",
                "requires.txt",
                "SOURCES.txt",
                "dependency_links.txt",
                "not-zip-safe",
                "zip-safe",
            }
            for node in os.listdir(egginfo_path):
                if node in skipped or node.endswith((".pyc", ".pyo")):
                    continue
                shutil.copy2(
                    os.path.join(egginfo_path, node),
                    os.path.join(distinfo_path, node),
                )
            shutil.rmtree(egginfo_path)

    return bdist_wheel


if _HAVE_WHEEL:
    setup()
else:
    _install_wheelfile_stub()
    setup(cmdclass={"bdist_wheel": _make_shim_bdist_wheel()})
