"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file exists only so
that ``pip install -e .`` works in offline environments whose setuptools
lacks PEP 517 editable-wheel support.
"""

from setuptools import setup

setup()
