"""Offline-compatible setup shim.

Project metadata lives in pyproject.toml (PEP 621); setuptools >= 61
reads it from there.  This file exists because the target environments
are *offline* and ship setuptools without the third-party ``wheel``
package, while modern pip builds every install through a wheel: PEP 660
editable wheels for ``pip install -e .`` and plain wheels for
``pip install .``.  Setuptools' machinery needs two things from
``wheel``: the ``bdist_wheel`` command (tags, the egg-info → dist-info
conversion and, for plain builds, the build-and-zip step) and
``wheel.wheelfile.WheelFile`` (to zip a wheel with a RECORD).  When
``wheel`` is importable we defer to it; otherwise the minimal stand-ins
below are registered, which support both pure-Python paths used by::

    pip install -e . --no-build-isolation
    pip install . --no-build-isolation

The shim's ``bdist_wheel.run`` stages ``build_lib`` plus a dist-info
directory converted from egg-info and zips them with a hashed RECORD —
enough for pip to verify and install a py3-none-any wheel offline.
Set ``REPRO_FORCE_WHEEL_SHIM=1`` to exercise the shim even where the
native machinery exists (used by the test suite).
"""

from __future__ import annotations

import base64
import hashlib
import os
import re
import shutil
import zipfile

from typing import ClassVar

from setuptools import setup


def _native_wheel_support() -> bool:
    """Can setuptools build wheels without our stand-ins?

    Modern setuptools (>= 70.1) bundles its own ``bdist_wheel`` command;
    otherwise the real third-party ``wheel`` package provides it.  Either
    way the native machinery is complete and must not be shadowed —
    except under ``REPRO_FORCE_WHEEL_SHIM=1``, which the tests use to
    exercise the shim everywhere.
    """
    if os.environ.get("REPRO_FORCE_WHEEL_SHIM") == "1":
        return False
    try:
        import setuptools.command.bdist_wheel  # noqa: F401

        return True
    except ImportError:
        pass
    try:
        import wheel.bdist_wheel  # noqa: F401

        return True
    except ImportError:
        return False


_HAVE_WHEEL = _native_wheel_support()


def _record_hash(data: bytes) -> str:
    digest = hashlib.sha256(data).digest()
    return "sha256=" + base64.urlsafe_b64encode(digest).rstrip(b"=").decode("ascii")


_WHEEL_NAME_RE = re.compile(
    r"^(?P<namever>(?P<name>.+?)-(?P<version>\d[^-]*?))"
    r"(-(?P<build>\d[^-]*?))?-(?P<pyver>.+?)-(?P<abi>.+?)-(?P<plat>.+?)\.whl$"
)


class _MiniWheelFile(zipfile.ZipFile):
    """Just enough of wheel.wheelfile.WheelFile for editable wheels.

    Records a sha256 digest for every member written and appends the
    RECORD file on close, which is what pip verifies at install time.
    """

    def __init__(self, file, mode="r", compression=zipfile.ZIP_DEFLATED):
        super().__init__(file, mode, compression=compression)
        parsed = _WHEEL_NAME_RE.match(os.path.basename(str(file)))
        if parsed is None:
            raise ValueError(f"not a valid wheel filename: {file}")
        self.dist_info_path = f"{parsed.group('namever')}.dist-info"
        self.record_path = f"{self.dist_info_path}/RECORD"
        self._record_entries: list[str] = []

    def writestr(self, zinfo_or_arcname, data, *args, **kwargs):
        if isinstance(data, str):
            data = data.encode("utf-8")
        super().writestr(zinfo_or_arcname, data, *args, **kwargs)
        arcname = getattr(zinfo_or_arcname, "filename", zinfo_or_arcname)
        self._record_entries.append(
            f"{arcname},{_record_hash(data)},{len(data)}"
        )

    def write(self, filename, arcname=None, *args, **kwargs):
        # Route through writestr with an explicit ZipInfo: zipfile rejects
        # pre-1980 timestamps, and reproducible-build environments (pip
        # sets SOURCE_DATE_EPOCH=0) produce exactly those — clamp to the
        # ZIP epoch the way the real `wheel` package does.  writestr also
        # appends the RECORD entry, so no double accounting here.
        import time

        with open(filename, "rb") as handle:
            data = handle.read()
        stat = os.stat(filename)
        mtime = time.localtime(max(stat.st_mtime, 315532800.0))
        zinfo = zipfile.ZipInfo(
            arcname if arcname is not None else filename,
            date_time=mtime[:6],
        )
        zinfo.external_attr = (stat.st_mode & 0xFFFF) << 16
        zinfo.compress_type = self.compression
        self.writestr(zinfo, data)

    def write_files(self, base_dir):
        """Add every file under *base_dir* (deterministic order)."""
        collected = []
        for root, _dirs, files in os.walk(base_dir):
            for name in files:
                path = os.path.join(root, name)
                arcname = os.path.relpath(path, base_dir).replace(os.sep, "/")
                if arcname != self.record_path:
                    collected.append((arcname, path))
        for arcname, path in sorted(collected):
            self.write(path, arcname)

    def close(self):
        if self.fp is not None and self.mode == "w":
            record = "\n".join([*self._record_entries, f"{self.record_path},,", ""])
            super().writestr(self.record_path, record.encode("utf-8"))
        super().close()


def _install_wheelfile_stub() -> None:
    """Make ``from wheel.wheelfile import WheelFile`` importable.

    No-op when a real ``wheel.wheelfile`` exists — the stub only fills
    the hole, it never shadows working machinery.
    """
    import sys
    import types

    try:
        import wheel.wheelfile  # noqa: F401

        return
    except ImportError:
        pass
    if "wheel.wheelfile" in sys.modules:
        return
    wheel_mod = types.ModuleType("wheel")
    wheelfile_mod = types.ModuleType("wheel.wheelfile")
    wheelfile_mod.WheelFile = _MiniWheelFile
    wheel_mod.wheelfile = wheelfile_mod
    sys.modules.setdefault("wheel", wheel_mod)
    sys.modules["wheel.wheelfile"] = wheelfile_mod


def _requires_to_metadata(requires_text: str) -> list[str]:
    """Translate egg-info requires.txt into Requires-Dist/Provides-Extra.

    Section headers are ``[extra]``, ``[extra:marker]`` or ``[:marker]``;
    markers must survive into the Requires-Dist environment marker or the
    dependency becomes unconditional.
    """
    lines: list[str] = []
    extra = None
    condition = None
    for raw in requires_text.splitlines():
        entry = raw.strip()
        if not entry:
            continue
        if entry.startswith("[") and entry.endswith("]"):
            section = entry[1:-1]
            extra, _, condition = section.partition(":")
            extra = extra.strip()
            condition = condition.strip() or None
            if extra:
                lines.append(f"Provides-Extra: {extra}")
            continue
        clauses = []
        if condition:
            clauses.append(f"({condition})" if extra else condition)
        if extra:
            clauses.append(f'extra == "{extra}"')
        marker = f" ; {' and '.join(clauses)}" if clauses else ""
        lines.append(f"Requires-Dist: {entry}{marker}")
    return lines


def _make_shim_bdist_wheel():
    from distutils.cmd import Command

    class bdist_wheel(Command):  # noqa: N801 — distutils command naming
        """Wheel builder stand-in for editable *and* plain installs.

        The editable path (PEP 660) only calls :meth:`get_tag` /
        :meth:`write_wheelfile` / :meth:`egg2dist`; :meth:`run` serves
        plain ``pip install .`` by staging ``build_lib`` next to a
        dist-info converted from egg-info and zipping both with a
        RECORD.
        """

        description = "minimal offline bdist_wheel stand-in (pure Python)"
        user_options: ClassVar = [
            ("dist-dir=", "d", "directory to put the final wheel in"),
        ]

        def initialize_options(self):
            self.dist_dir = None

        def finalize_options(self):
            if self.dist_dir is None:
                self.dist_dir = "dist"

        def run(self):
            self.run_command("build")
            build = self.get_finalized_command("build")
            self.run_command("egg_info")
            egg_info = self.get_finalized_command("egg_info")
            name = re.sub(r"[^\w\d.]+", "_", egg_info.egg_name, flags=re.UNICODE)
            version = re.sub(
                r"[^\w\d.+]+", "_", egg_info.egg_version, flags=re.UNICODE
            )
            name_version = f"{name}-{version}"
            staging = os.path.join(build.build_base, f"wheel-shim-{name_version}")
            if os.path.exists(staging):
                shutil.rmtree(staging)
            shutil.copytree(build.build_lib, staging)
            # egg2dist consumes (and removes) its input — feed it a copy.
            egg_copy = os.path.join(staging, os.path.basename(egg_info.egg_info))
            shutil.copytree(egg_info.egg_info, egg_copy)
            distinfo = os.path.join(staging, f"{name_version}.dist-info")
            self.egg2dist(egg_copy, distinfo)
            self.write_wheelfile(distinfo)
            os.makedirs(self.dist_dir, exist_ok=True)
            wheel_name = f"{name_version}-py3-none-any.whl"
            wheel_path = os.path.join(self.dist_dir, wheel_name)
            with _MiniWheelFile(wheel_path, "w") as archive:
                archive.write_files(staging)
            shutil.rmtree(staging)
            self.distribution.dist_files.append(
                ("bdist_wheel", "py3", wheel_path)
            )

        def get_tag(self):
            return ("py3", "none", "any")

        def write_wheelfile(self, wheelfile_base):
            content = (
                "Wheel-Version: 1.0\n"
                "Generator: setup-py-offline-shim\n"
                "Root-Is-Purelib: true\n"
                "Tag: py3-none-any\n"
            )
            path = os.path.join(wheelfile_base, "WHEEL")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(content)

        def egg2dist(self, egginfo_path, distinfo_path):
            """Convert an .egg-info directory into a .dist-info directory."""
            if os.path.exists(distinfo_path):
                shutil.rmtree(distinfo_path)
            os.makedirs(distinfo_path)
            with open(
                os.path.join(egginfo_path, "PKG-INFO"), encoding="utf-8"
            ) as handle:
                pkg_info = handle.read()
            requires_path = os.path.join(egginfo_path, "requires.txt")
            extra_headers: list[str] = []
            if os.path.exists(requires_path):
                with open(requires_path, encoding="utf-8") as handle:
                    extra_headers = _requires_to_metadata(handle.read())
            headers, separator, body = pkg_info.partition("\n\n")
            if extra_headers:
                headers = "\n".join([headers.rstrip("\n"), *extra_headers])
            with open(
                os.path.join(distinfo_path, "METADATA"), "w", encoding="utf-8"
            ) as handle:
                handle.write(headers + (separator + body if separator else "\n"))
            skipped = {
                "PKG-INFO",
                "requires.txt",
                "SOURCES.txt",
                "dependency_links.txt",
                "not-zip-safe",
                "zip-safe",
            }
            for node in os.listdir(egginfo_path):
                if node in skipped or node.endswith((".pyc", ".pyo")):
                    continue
                shutil.copy2(
                    os.path.join(egginfo_path, node),
                    os.path.join(distinfo_path, node),
                )
            shutil.rmtree(egginfo_path)

    return bdist_wheel


if _HAVE_WHEEL:
    setup()
else:
    _install_wheelfile_stub()
    setup(cmdclass={"bdist_wheel": _make_shim_bdist_wheel()})
